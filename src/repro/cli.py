"""Command-line interface: run the paper's experiments from a shell.

Subcommands:

- ``route``       -- route a workload with a chosen algorithm
- ``lower-bound`` -- run an adversarial construction + replay verification
- ``section6``    -- run the O(n)-time O(1)-queue algorithm
- ``bounds``      -- print every closed-form bound for given (n, k)
- ``verify``      -- differential/invariant verification of all routers
  (oracle battery + metamorphic images + EX-swap probes, see docs/VERIFY.md)
- ``campaign``    -- run/inspect declarative experiment campaigns
  (``campaign run|status|show``, see docs/HARNESS.md)
- ``bench``       -- tracked step-throughput benchmark with regression
  check against BENCH_step_throughput.json (see docs/PERFORMANCE.md)
- ``analyze``     -- static deadlock, queue-bound & determinism analysis
  (``analyze cdg|bounds|lint|all``, see docs/ANALYSIS.md)
- ``faults``      -- fault-injection availability sweep with degradation
  metrics and overflow detection (see docs/FAULTS.md)
- ``stream``      -- open-loop saturation sweep: injection-rate ladder per
  router with knee detection (see docs/STREAMING.md)
- ``serve``       -- live injection service over newline-delimited JSON on
  TCP (see docs/STREAMING.md for the wire format)

Exit codes are uniform across subcommands: 0 success, 1 the command ran but
found failures (stalled routing, verification findings, new lint
violations, CDG disagreements), 2 bad arguments (argparse errors and
semantic argument validation alike).

Example::

    python -m repro lower-bound --construction adaptive --n 120 --k 1
    python -m repro route --algorithm bounded-dor --n 32 --k 2 --workload transpose
    python -m repro section6 --n 81 --workload random
    python -m repro campaign run benchmarks/specs/smoke.json --workers 4
    python -m repro analyze all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.core import bounds as bounds_mod
from repro.core import (
    AdaptiveLowerBoundConstruction,
    DorLowerBoundConstruction,
    FfLowerBoundConstruction,
    replay_constructed_permutation,
)
from repro.core.extensions import HhLowerBoundConstruction, TorusLowerBoundConstruction
from repro.mesh import TOPOLOGY_NAMES, Mesh, Simulator, Torus, build_topology
from repro.routing import (
    AlternatingAdaptiveRouter,
    BoundedDimensionOrderRouter,
    BoundedExcursionRouter,
    CreditAdaptiveRouter,
    DimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
    RandomizedAdaptiveRouter,
)
ALGORITHMS: dict[str, Callable[[argparse.Namespace], object]] = {
    "dor": lambda a: DimensionOrderRouter(a.k),
    "bounded-dor": lambda a: BoundedDimensionOrderRouter(a.k),
    "farthest-first": lambda a: FarthestFirstRouter(a.k),
    "greedy-adaptive": lambda a: GreedyAdaptiveRouter(a.k, a.queues),
    "alternating-adaptive": lambda a: AlternatingAdaptiveRouter(a.k, a.queues),
    "hot-potato": lambda a: HotPotatoRouter(),
    "randomized-adaptive": lambda a: RandomizedAdaptiveRouter(a.k, a.seed, a.queues),
    "bounded-excursion": lambda a: BoundedExcursionRouter(a.k, a.delta, a.queues),
    "credit-adaptive": lambda a: CreditAdaptiveRouter(a.k),
}


def _usage_error(message: str) -> SystemExit:
    """Bad arguments: message on stderr, exit code 2 (matches argparse)."""
    print(f"repro: error: {message}", file=sys.stderr)
    return SystemExit(2)


def make_workload(name: str, topology, seed: int):
    from repro.harness.execute import build_workload

    try:
        return build_workload(name, topology, seed)
    except ValueError as exc:
        raise _usage_error(str(exc))


def cmd_route(args: argparse.Namespace) -> int:
    if args.topology and args.torus:
        raise _usage_error("--topology and --torus are mutually exclusive")
    if args.topology:
        from repro.harness.specs import ND_ALGORITHMS, ND_TOPOLOGIES

        if args.topology in ND_TOPOLOGIES and args.algorithm not in ND_ALGORITHMS:
            raise _usage_error(
                f"--topology {args.topology} requires a d-dimensional router "
                f"({', '.join(ND_ALGORITHMS)}); {args.algorithm} routes 2D only"
            )
        topology = build_topology(args.topology, args.n)
    else:
        topology = Torus(args.n) if args.torus else Mesh(args.n)
    algorithm = ALGORITHMS[args.algorithm](args)
    packets = make_workload(args.workload, topology, args.seed)
    sim = Simulator(topology, algorithm, packets, engine=args.engine)
    if args.availability < 1.0:
        from repro.mesh.asynchrony import make_async

        make_async(sim, args.availability, seed=args.seed)
    if args.profile:
        from repro.perf import StepInstrumentation, hotspot_table, profile_run
        from repro.perf.profiling import format_phase_summary

        sim.instrument = StepInstrumentation()
        result, profiler = profile_run(lambda: sim.run(max_steps=args.max_steps))
    else:
        result = sim.run(max_steps=args.max_steps)
    status = "delivered" if result.completed else "STALLED"
    # Report the engine that actually ran: "array" silently falls back
    # to "reference" for routers the backend has not ported.
    engine_tag = (
        f" [{sim.engine_name} engine]" if args.engine != "reference" else ""
    )
    print(
        f"{algorithm.name} on {topology!r} / {args.workload}: {status} "
        f"{result.delivered}/{result.total_packets} in {result.steps} steps "
        f"(diameter {topology.diameter}), max queue {result.max_queue_len}, "
        f"max node load {result.max_node_load}, {result.total_moves} moves"
        f"{engine_tag}"
    )
    if args.profile:
        print()
        print(format_phase_summary(result.counters))
        print()
        print(hotspot_table(profiler, limit=args.profile_limit))
    return 0 if result.completed else 1


def cmd_lower_bound(args: argparse.Namespace) -> int:
    if args.construction == "adaptive":
        factory = lambda: GreedyAdaptiveRouter(args.k)
        con = AdaptiveLowerBoundConstruction(
            args.n, factory, check_invariants=args.check_invariants
        )
        topology = None
    elif args.construction == "torus":
        factory = lambda: GreedyAdaptiveRouter(args.k)
        con = TorusLowerBoundConstruction(
            args.n, factory, check_invariants=args.check_invariants
        )
        topology = con.topology
    elif args.construction == "dor":
        factory = lambda: BoundedDimensionOrderRouter(args.k)
        con = DorLowerBoundConstruction(
            args.n, factory, check_invariants=args.check_invariants
        )
        topology = None
    elif args.construction == "ff":
        factory = lambda: FarthestFirstRouter(args.k)
        con = FfLowerBoundConstruction(
            args.n, factory, check_invariants=args.check_invariants
        )
        topology = None
    elif args.construction == "hh":
        factory = lambda: GreedyAdaptiveRouter(max(args.k, args.h))
        con = HhLowerBoundConstruction(
            args.n, args.h, factory, check_invariants=args.check_invariants
        )
        topology = None
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown construction {args.construction!r}")

    result = con.run()
    print(
        f"{args.construction} construction on n={args.n}, k={args.k}: "
        f"certified bound {result.bound_steps} steps, "
        f"{result.exchange_count} exchanges, "
        f"{result.undelivered_at_bound} packets undelivered at the horizon"
    )
    report = replay_constructed_permutation(
        result,
        factory,
        topology=topology,
        run_to_completion=not args.no_completion,
        max_steps=args.max_steps,
    )
    print(
        f"replay: configuration match = {report.configuration_matches}, "
        f"deliveries match = {report.delivery_times_match}"
    )
    if report.completed is not None:
        print(f"full routing time: {report.total_steps} steps")
    return 0 if report.configuration_matches else 1


def cmd_section6(args: argparse.Namespace) -> int:
    from repro.tiling import Section6Router

    mesh = Mesh(args.n)
    packets = make_workload(args.workload, mesh, args.seed)
    result = Section6Router(args.n, improved=args.improved).route(packets)
    factor = 564 if args.improved else 972
    print(
        f"Section 6 on n={args.n} / {args.workload}: delivered "
        f"{result.delivered}/{result.total_packets}; actual "
        f"{result.actual_steps} steps, scheduled {result.scheduled_steps} "
        f"(bound {factor * args.n}), max node load {result.max_node_load} "
        f"(bound 834)"
    )
    return 0 if result.completed else 1


def cmd_bounds(args: argparse.Namespace) -> int:
    n, k = args.n, args.k
    rows = [
        ("diameter (2n-2)", bounds_mod.diameter_bound(n)),
        ("Theorem 13 certified", bounds_mod.adaptive_lower_bound(n, k)),
        ("Theorem 14 closed form", bounds_mod.theorem14_closed_form(n, k)),
        ("dim-order lower (S5)", bounds_mod.dimension_order_lower_bound(n, k)),
        ("dim-order closed form", bounds_mod.dimension_order_closed_form(n, k)),
        ("farthest-first lower (S5)", bounds_mod.farthest_first_lower_bound(n, k)),
        ("Theorem 15 upper budget", bounds_mod.theorem15_upper_bound(n, k)),
        ("Section 6 time (972n)", bounds_mod.section6_time_bound(n)),
        ("Section 6 improved (564n)", bounds_mod.section6_improved_time_bound(n)),
        ("Section 6 queue bound", bounds_mod.section6_queue_bound()),
    ]
    width = max(len(r[0]) for r in rows)
    for name, value in rows:
        print(f"{name.ljust(width)}  {value}")
    return 0


def _verify_engines(args: argparse.Namespace, progress) -> int:
    """The ``verify --engines`` mode: array-vs-reference lockstep matrix."""
    from repro.verify import ARRAY_PORTED, LOCKSTEP_FAMILIES, run_engine_matrix

    reports = run_engine_matrix(
        routers=tuple(args.routers) if args.routers else ARRAY_PORTED,
        families=tuple(args.families) if args.families else LOCKSTEP_FAMILIES,
        sizes=tuple(args.n) if args.n else (8, 16),
        ks=tuple(args.k) if args.k else (1, 2),
        seeds=tuple(range(args.seeds)) if args.seeds else (0,),
        max_steps=args.budget,
        progress=progress,
    )
    findings = 0
    for r in reports:
        status = "ok" if r.ok else "; ".join(r.findings)
        findings += len(r.findings)
        print(
            f"{r.router:<12} {r.family:<12} n={r.n:<3} k={r.k} seed={r.seed}: "
            f"{r.steps} lockstep steps, {status}"
        )
    verdict = "PASS" if findings == 0 else "FAIL"
    print(
        f"verify --engines {verdict}: {len(reports)} cells, "
        f"{findings} finding(s)"
    )
    return 0 if findings == 0 else 1


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import FAMILIES, REGISTRY, run_verification

    if args.smoke:
        families, sizes, ks, seeds = None, (8,), (1, 2), (0,)
    else:
        families, sizes, ks, seeds = None, (8, 12), (1, 2), (0, 1, 2)
    if args.families:
        unknown = set(args.families) - set(FAMILIES)
        if unknown:
            raise _usage_error(
                f"unknown families {sorted(unknown)}; expected {FAMILIES}"
            )
        families = tuple(args.families)
    if args.n:
        sizes = tuple(args.n)
    if args.k:
        ks = tuple(args.k)
    if args.seeds:
        seeds = tuple(range(args.seeds))
    if args.routers:
        unknown = set(args.routers) - set(REGISTRY)
        if unknown:
            raise _usage_error(
                f"unknown routers {sorted(unknown)}; expected {sorted(REGISTRY)}"
            )

    progress = None if args.quiet else lambda msg: print(f"verify: {msg}", file=sys.stderr)
    if args.engines:
        return _verify_engines(args, progress)
    kwargs = dict(
        sizes=sizes,
        ks=ks,
        seeds=seeds,
        routers=args.routers or None,
        mode=args.mode,
        metamorphic=not args.no_metamorphic,
        probes=not args.no_probes,
        progress=progress,
    )
    if families is not None:
        kwargs["families"] = families
    report = run_verification(**kwargs)

    for cell in report.cells:
        status = "ok" if cell.ok else f"{len(cell.findings)} finding(s)"
        stalls = f", expected stalls: {','.join(cell.stalls)}" if cell.stalls else ""
        print(
            f"{cell.family:<12} n={cell.n:<3} k={cell.k} seed={cell.seed}: "
            f"{len(cell.outcomes)} routers, {cell.runs} runs, {status}{stalls}"
        )
    for finding in report.findings:
        print(f"FINDING: {finding}")
    verdict = "PASS" if report.ok else "FAIL"
    print(
        f"verify {verdict}: {len(report.cells)} cells, {report.runs} runs, "
        f"{len(report.findings)} finding(s)"
    )
    return 0 if report.ok else 1


def _campaign_store(args: argparse.Namespace):
    from repro.harness import ResultStore

    return ResultStore(args.campaign_dir)


def _campaign_name(args: argparse.Namespace) -> str:
    """Accept either a campaign name or a path to its spec file."""
    import pathlib

    target = args.campaign
    if target.endswith(".json") or pathlib.Path(target).is_file():
        from repro.harness import CampaignSpec

        return CampaignSpec.from_file(target).name
    return target


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.harness import CampaignSpec, run_campaign

    try:
        campaign = CampaignSpec.from_file(args.spec)
    except (OSError, ValueError) as exc:
        raise _usage_error(f"cannot load campaign spec: {exc}")
    if args.resume and not _campaign_store(args).cache_dir.exists():
        raise _usage_error(
            f"--resume: no cache under {args.campaign_dir}; nothing to resume"
        )
    try:
        run = run_campaign(
            campaign,
            workers=args.workers,
            base_dir=args.campaign_dir,
            timeout_s=args.timeout,
            fresh=args.fresh,
            progress=not args.quiet,
        )
    except ValueError as exc:
        raise _usage_error(str(exc))
    telemetry = run.manifest["telemetry"]
    print(
        f"campaign {run.name}: {run.ok}/{len(run.results)} ok "
        f"({run.cached} cached, {telemetry['error']} error, "
        f"{telemetry['timeout']} timeout) in {telemetry['wall_s']}s"
    )
    print(f"results: {run.results_path}")
    print(f"manifest: {run.manifest_path}")
    for result in run.results:
        if result.status != "ok":
            first = (result.error or result.status).splitlines()[0]
            print(f"  FAILED #{result.index} [{result.status}] {first}")
    return 0 if run.failed == 0 else 1


def cmd_bench(args: argparse.Namespace) -> int:
    import pathlib

    from repro.harness import CampaignSpec, run_campaign
    from repro.perf.bench import compare_and_merge

    spec_path = args.spec or (
        "benchmarks/specs/bench_array_smoke.json"
        if args.engine == "array"
        else "benchmarks/specs/bench_smoke.json"
        if args.smoke
        else "benchmarks/specs/bench_throughput.json"
    )
    try:
        campaign = CampaignSpec.from_file(spec_path)
    except (OSError, ValueError) as exc:
        raise _usage_error(f"cannot load bench spec: {exc}")
    # Timing runs are always fresh (a cached timing is not a measurement)
    # and single-worker (parallel cells would contend for the machine).
    run = run_campaign(
        campaign,
        workers=1,
        base_dir=args.campaign_dir,
        fresh=True,
        progress=not args.quiet,
    )
    report = compare_and_merge(
        run,
        pathlib.Path(args.baseline),
        tolerance=args.tolerance,
        update=not args.no_update,
    )
    print(report.table())
    if report.failed_trials:
        print(f"bench: {len(report.failed_trials)} cell(s) failed to run")
        return 1
    if report.regressions:
        slowest = min(report.regressions, key=lambda c: c.change)
        print(
            f"bench: REGRESSION -- {len(report.regressions)} cell(s) more than "
            f"{args.tolerance:.0%} below baseline (worst: {slowest.key} "
            f"{100.0 * slowest.change:+.1f}%)"
        )
        return 1
    print(f"bench: ok, baseline {'left unchanged' if args.no_update else 'updated'}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run the fault-injection sweep and print its degradation table.

    Exit 1 when a trial crashed or a resilience-layer cell (conservative
    or fault-reroute) overflowed a queue -- those algorithms are the ones
    the sweep certifies as safe; the always-accept organizations are
    *expected* to overflow at low availability, so their violations are
    reported but not fatal.
    """
    from repro.harness import CampaignSpec, run_campaign

    spec_path = args.spec or (
        "benchmarks/specs/faults_smoke.json"
        if args.smoke
        else "benchmarks/specs/faults_sweep.json"
    )
    try:
        campaign = CampaignSpec.from_file(spec_path)
    except (OSError, ValueError) as exc:
        raise _usage_error(f"cannot load faults spec: {exc}")
    run = run_campaign(
        campaign,
        workers=args.workers,
        base_dir=args.campaign_dir,
        fresh=args.fresh,
        progress=not args.quiet,
    )

    safe_algorithms = ("conservative-bounded-dor", "fault-reroute")
    print(
        f"{'cell':<46} {'avail':>5} {'deliv':>6} {'p50':>5} {'p99':>5} "
        f"{'maxq':>4} {'drop':>5} {'rtx':>4} overflow"
    )
    failures = 0
    safety_violations = 0
    for result in run.results:
        spec = result.spec
        if result.status != "ok" or result.metrics is None:
            first = (result.error or result.status).splitlines()[0]
            print(f"  FAILED #{result.index} [{result.status}] {first}")
            failures += 1
            continue
        m = result.metrics
        name = m.get("algorithm_name", spec.algorithm)
        label = spec.label or f"{name}/n{spec.n}/k{spec.k}/s{spec.seed}"
        overflows = m.get("queue_bound_violations", 0)
        p50, p99 = m.get("latency_p50"), m.get("latency_p99")
        print(
            f"{label:<46} {spec.availability:>5.2f} "
            f"{m.get('delivered_fraction', 0.0):>6.3f} "
            f"{'-' if p50 is None else p50:>5} {'-' if p99 is None else p99:>5} "
            f"{m.get('max_queue_len', 0):>4} {m.get('dropped_packets', 0):>5} "
            f"{m.get('retransmissions', 0):>4} "
            f"{'YES (' + str(overflows) + ')' if overflows else 'no'}"
        )
        if overflows and name in safe_algorithms:
            safety_violations += 1
            print(f"  SAFETY: {name} must never overflow, but did ({label})")
    verdict = "PASS" if not failures and not safety_violations else "FAIL"
    print(
        f"faults {verdict}: {len(run.results)} cells, {failures} failed, "
        f"{safety_violations} safety violation(s)"
    )
    return 0 if verdict == "PASS" else 1


def cmd_stream(args: argparse.Namespace) -> int:
    """Run the saturation-sweep campaign and print the knee table.

    Groups the campaign's ``streaming`` cells by (algorithm, n, arrival
    process), orders each group by nominal rate, and reports the knee --
    the first rate whose delivered rate falls below 95% of the offered
    rate.  Wedged cells (overload exchange-deadlock) are findings, not
    failures; exit 1 is reserved for crashed trials and conservation
    violations (a rejected-packet accounting bug would show up there).
    """
    from repro.harness import CampaignSpec, run_campaign
    from repro.streaming import SweepPoint, SweepResult

    spec_path = args.spec or (
        "benchmarks/specs/streaming_smoke.json"
        if args.smoke
        else "benchmarks/specs/streaming_sweep.json"
    )
    try:
        campaign = CampaignSpec.from_file(spec_path)
    except (OSError, ValueError) as exc:
        raise _usage_error(f"cannot load streaming spec: {exc}")
    run = run_campaign(
        campaign,
        workers=args.workers,
        base_dir=args.campaign_dir,
        fresh=args.fresh,
        progress=not args.quiet,
    )

    groups: dict[tuple[str, int, str], SweepResult] = {}
    failures = 0
    conservation = 0
    for result in run.results:
        spec = result.spec
        if result.status != "ok" or result.metrics is None:
            first = (result.error or result.status).splitlines()[0]
            print(f"  FAILED #{result.index} [{result.status}] {first}")
            failures += 1
            continue
        key = (spec.algorithm, spec.n, spec.arrival)
        group = groups.get(key)
        if group is None:
            groups[key] = group = SweepResult(
                algorithm=spec.algorithm, n=spec.n, process=spec.arrival
            )
        group.points.append(SweepPoint(rate=spec.rate, metrics=result.metrics))
        conservation += result.metrics.get("conservation_violations", 0)

    print(
        f"{'cell':<34} {'rate':>5} {'offer':>6} {'deliv':>6} {'rej':>6} "
        f"{'p50':>5} {'p99':>5} {'outcome':>8} knee"
    )
    for (algorithm, n, process), group in groups.items():
        group.points.sort(key=lambda point: point.rate)
        knee = group.saturation_rate()
        knee_text = f"{knee:g}" if knee is not None else "-"
        for point in group.points:
            m = point.metrics
            outcome = (
                "wedged" if m.get("stalled")
                else "drained" if m.get("drained")
                else "slow"
            )
            p50, p99 = m.get("latency_p50"), m.get("latency_p99")
            print(
                f"{algorithm + '/n' + str(n) + '/' + process:<34} "
                f"{point.rate:>5g} {m['offered_rate']:>6.3f} "
                f"{m['delivered_rate']:>6.3f} {m['rejection_fraction']:>6.1%} "
                f"{'-' if p50 is None else p50:>5} "
                f"{'-' if p99 is None else p99:>5} {outcome:>8} {knee_text}"
            )
    if conservation:
        print(f"  CONSERVATION: {conservation} violation(s) across cells")
    verdict = "PASS" if not failures and not conservation else "FAIL"
    print(
        f"stream {verdict}: {len(run.results)} cells in {len(groups)} sweeps, "
        f"{failures} failed, {conservation} conservation violation(s)"
    )
    return 0 if verdict == "PASS" else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the live injection service until a client sends ``shutdown``."""
    import asyncio

    from repro.streaming import StreamingService, serve_forever

    topology = Torus(args.n) if args.torus else Mesh(args.n)
    algorithm = ALGORITHMS[args.algorithm](args)
    service = StreamingService(topology, algorithm)

    def on_ready(host: str, port: int) -> None:
        # Scripted clients parse this line to find an ephemeral --port 0.
        print(f"repro serve listening on {host}:{port}", flush=True)

    asyncio.run(serve_forever(service, args.host, args.port, on_ready=on_ready))
    print("repro serve: shutdown")
    return 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.analysis.campaigns import summarize_manifest

    store = _campaign_store(args)
    try:
        manifest = store.read_manifest(_campaign_name(args))
    except (FileNotFoundError, ValueError) as exc:
        raise _usage_error(str(exc))
    print(summarize_manifest(manifest))
    return 0


def cmd_campaign_show(args: argparse.Namespace) -> int:
    from repro.analysis.campaigns import summarize_rows

    store = _campaign_store(args)
    try:
        rows = store.read_results(_campaign_name(args))
    except (FileNotFoundError, ValueError) as exc:
        raise _usage_error(str(exc))
    print(summarize_rows(rows))
    return 0


def _repo_root(args: argparse.Namespace) -> "object":
    import pathlib

    if args.root is not None:
        return pathlib.Path(args.root)
    import repro

    # src/repro/__init__.py -> src/repro -> src -> repo root.
    return pathlib.Path(repro.__file__).resolve().parents[2]


def _analyze_cdg(args: argparse.Namespace) -> int:
    from repro.analysis.static_check import (
        analyze_registry,
        check_agreement_detailed,
    )
    from repro.analysis.static_check.cdg import CYCLIC, SEVERITY_ERROR, TOPOLOGIES

    topologies = tuple(args.topologies) if args.topologies else TOPOLOGIES
    if args.format == "markdown":
        from repro.analysis.static_check import render_markdown, verdict_matrix

        try:
            matrix = verdict_matrix(
                n=args.n[0], k=args.k[0],
                topologies=topologies, routers=args.routers or None,
            )
        except ValueError as exc:
            raise _usage_error(str(exc))
        print(render_markdown(matrix, topologies=topologies))
        return 0
    try:
        verdicts = analyze_registry(
            ns=tuple(args.n), ks=tuple(args.k),
            topologies=topologies, routers=args.routers or None,
        )
    except ValueError as exc:
        raise _usage_error(str(exc))
    if args.json or args.format == "json":
        import json

        print(json.dumps([v.to_dict() for v in verdicts], indent=2))
    else:
        for v in verdicts:
            line = (
                f"{v.router:<22} {v.topology:<5} n={v.n:<3} k={v.k} "
                f"{v.verdict:<14} channels={v.channels} edges={v.edges}"
            )
            if v.verdict == CYCLIC:
                line += "  witness: " + " -> ".join(str(c) for c in v.witness)
            print(line)
    detailed = check_agreement_detailed(verdicts)
    findings = [f.message for f in detailed if f.severity == SEVERITY_ERROR]
    for finding in findings:
        print(f"DISAGREEMENT: {finding}")
    for advisory in (f for f in detailed if f.severity != SEVERITY_ERROR):
        print(f"ADVISORY: {advisory.message}")
    verdict = "PASS" if not findings else "FAIL"
    print(
        f"analyze cdg {verdict}: {len(verdicts)} verdicts, "
        f"{len(findings)} disagreement(s) with the runtime expectation table"
    )
    return 0 if not findings else 1


def _analyze_bounds(args: argparse.Namespace) -> int:
    from repro.analysis.static_check import certify_registry, check_bounds_agreement
    from repro.analysis.static_check.bounds import UNBOUNDED
    from repro.analysis.static_check.cdg import TOPOLOGIES

    topologies = tuple(args.topologies) if args.topologies else TOPOLOGIES
    try:
        verdicts = certify_registry(
            ns=tuple(args.n), ks=tuple(args.k),
            topologies=topologies, routers=args.routers or None,
        )
    except ValueError as exc:
        raise _usage_error(str(exc))
    if args.json or args.format == "json":
        import json

        print(json.dumps([v.to_dict() for v in verdicts], indent=2))
    else:
        for v in verdicts:
            line = (
                f"{v.router:<22} {v.topology:<5} n={v.n:<3} k={v.k} "
                f"{v.describe():<26} channels={v.channels}"
            )
            if v.verdict == UNBOUNDED:
                line += "  witness: " + " ; ".join(str(s) for s in v.witness)
            print(line)
    findings = check_bounds_agreement(verdicts, n=min(args.n), ks=tuple(args.k))
    for finding in findings:
        print(f"DISAGREEMENT: {finding}")
    verdict = "PASS" if not findings else "FAIL"
    print(
        f"analyze bounds {verdict}: {len(verdicts)} verdicts, "
        f"{len(findings)} disagreement(s) with the runtime QueueBoundOracle"
    )
    return 0 if not findings else 1


def _analyze_lint(args: argparse.Namespace) -> int:
    from repro.analysis.static_check import (
        diff_against_baseline,
        run_lint,
        save_baseline,
    )

    root = _repo_root(args)
    try:
        violations = run_lint(root)
    except ValueError as exc:
        raise _usage_error(str(exc))
    if args.update_baseline:
        path = save_baseline(violations)
        print(f"analyze lint: baseline updated ({len(violations)} entries) at {path}")
        return 0
    new, fixed = diff_against_baseline(violations)
    for violation in new:
        print(f"NEW: {violation}")
    for rule, path, code in fixed:
        print(f"fixed (prune from baseline): {rule} {path}: {code}")
    verdict = "PASS" if not new else "FAIL"
    print(
        f"analyze lint {verdict}: {len(violations)} violation(s), "
        f"{len(new)} new, {len(fixed)} baseline entries fixed"
    )
    return 0 if not new else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.engine != "lint" and args.update_baseline:
        raise _usage_error("--update-baseline only applies to 'analyze lint'")
    if args.format == "markdown" and args.engine != "cdg":
        raise _usage_error(
            "--format markdown only applies to 'analyze cdg' (the verdict "
            "table already pairs each CDG verdict with its queue bound)"
        )
    rc = 0
    if args.engine in ("cdg", "all"):
        rc = max(rc, _analyze_cdg(args))
    if args.engine in ("bounds", "all"):
        rc = max(rc, _analyze_bounds(args))
    if args.engine in ("lint", "all"):
        rc = max(rc, _analyze_lint(args))
    return rc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chinn-Leighton-Tompa (SPAA 1994) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("route", help="route one workload")
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="bounded-dor")
    p.add_argument("--n", type=int, default=32)
    p.add_argument("--k", type=int, default=2)
    p.add_argument("--queues", choices=["central", "incoming"], default="central")
    p.add_argument("--delta", type=int, default=1)
    p.add_argument(
        "--availability",
        type=float,
        default=1.0,
        help="per-link per-step up probability (< 1.0 simulates asynchrony)",
    )
    p.add_argument("--workload", default="random")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--torus", action="store_true")
    p.add_argument(
        "--topology",
        choices=list(TOPOLOGY_NAMES),
        default="",
        help="route on a named topology (mesh3d/torus3d/pillar need a "
        "d-dimensional router); mutually exclusive with --torus",
    )
    p.add_argument("--max-steps", type=int, default=1_000_000)
    p.add_argument(
        "--engine",
        choices=["reference", "array"],
        default="reference",
        help="step engine: the per-packet reference simulator or the "
        "vectorized array backend (falls back to reference for unported "
        "routers; the output reports which engine ran)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile; print per-phase wall times and hot spots",
    )
    p.add_argument(
        "--profile-limit",
        type=int,
        default=20,
        help="rows in the --profile hot-spot table",
    )
    p.set_defaults(func=cmd_route)

    p = sub.add_parser("lower-bound", help="run an adversarial construction")
    p.add_argument(
        "--construction",
        choices=["adaptive", "dor", "ff", "torus", "hh"],
        default="adaptive",
    )
    p.add_argument("--n", type=int, default=120)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--h", type=int, default=2)
    p.add_argument("--check-invariants", action="store_true")
    p.add_argument("--no-completion", action="store_true")
    p.add_argument("--max-steps", type=int, default=2_000_000)
    p.set_defaults(func=cmd_lower_bound)

    p = sub.add_parser("section6", help="run the O(n) minimal adaptive algorithm")
    p.add_argument("--n", type=int, default=81)
    p.add_argument("--workload", default="random")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--improved", action="store_true")
    p.set_defaults(func=cmd_section6)

    p = sub.add_parser("bounds", help="print every closed-form bound")
    p.add_argument("--n", type=int, default=216)
    p.add_argument("--k", type=int, default=1)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser(
        "verify",
        help="cross-check all routers against the paper's invariant oracles",
    )
    p.add_argument(
        "--smoke", action="store_true", help="small preset: n=8, k in {1,2}, seed 0"
    )
    p.add_argument(
        "--families",
        nargs="+",
        metavar="FAMILY",
        help="workload families (default: permutation hh torus)",
    )
    p.add_argument("--n", type=int, nargs="+", help="mesh side lengths")
    p.add_argument("--k", type=int, nargs="+", help="queue capacities")
    p.add_argument("--seeds", type=int, help="number of seeds (0..seeds-1)")
    p.add_argument("--routers", nargs="+", help="subset of registered routers")
    p.add_argument(
        "--mode",
        choices=["strict", "record"],
        default="strict",
        help="strict aborts a run at its first violation; record collects all",
    )
    p.add_argument(
        "--no-metamorphic", action="store_true", help="skip transpose/reflect images"
    )
    p.add_argument(
        "--no-probes", action="store_true", help="skip the EX-swap and Section 6 probes"
    )
    p.add_argument(
        "--engines",
        action="store_true",
        help="lockstep array-vs-reference engine equivalence matrix instead "
        "of the differential sweep (compares every step's configuration; "
        "--routers/--families/--n/--k/--seeds narrow the grid)",
    )
    p.add_argument(
        "--budget",
        type=int,
        default=None,
        help="with --engines: cap every lockstep cell at this many steps "
        "(a bounded prefix is a sound gate since every step is compared; "
        "default runs each cell to its own step budget)",
    )
    p.add_argument("--quiet", action="store_true", help="no per-cell progress on stderr")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("campaign", help="run/inspect experiment campaigns")
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    pr = campaign_sub.add_parser("run", help="run a campaign spec")
    pr.add_argument("spec", help="path to a campaign spec JSON file")
    pr.add_argument("--workers", type=int, default=1, help="worker processes")
    pr.add_argument("--timeout", type=float, default=None, help="per-trial seconds")
    pr.add_argument(
        "--campaign-dir", default="campaigns", help="result store root (default: campaigns)"
    )
    pr.add_argument(
        "--fresh", action="store_true", help="ignore cached results and re-run everything"
    )
    pr.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted campaign (requires an existing cache)",
    )
    pr.add_argument("--quiet", action="store_true", help="no per-trial progress on stderr")
    pr.set_defaults(func=cmd_campaign_run)

    ps = campaign_sub.add_parser("status", help="show a campaign's manifest")
    ps.add_argument("campaign", help="campaign name or spec path")
    ps.add_argument("--campaign-dir", default="campaigns")
    ps.set_defaults(func=cmd_campaign_status)

    pw = campaign_sub.add_parser("show", help="print a campaign's result table")
    pw.add_argument("campaign", help="campaign name or spec path")
    pw.add_argument("--campaign-dir", default="campaigns")
    pw.set_defaults(func=cmd_campaign_show)

    p = sub.add_parser(
        "bench",
        help="run the tracked step-throughput benchmark",
    )
    p.add_argument(
        "--smoke", action="store_true", help="fast n=16 matrix (the CI job)"
    )
    p.add_argument(
        "--engine",
        choices=["reference", "array"],
        default="reference",
        help="array selects the array-backend matrix "
        "(benchmarks/specs/bench_array_smoke.json); baseline keys are "
        "engine-prefixed so the two engines never ratchet each other",
    )
    p.add_argument(
        "--spec", default=None, help="explicit bench campaign spec (overrides --smoke)"
    )
    p.add_argument(
        "--baseline",
        default="BENCH_step_throughput.json",
        help="tracked baseline file to compare against and merge into",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="fail when steps/s drops by more than this fraction",
    )
    p.add_argument(
        "--no-update",
        action="store_true",
        help="compare only; leave the baseline file unchanged",
    )
    p.add_argument("--campaign-dir", default="campaigns")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "faults",
        help="fault-injection availability sweep with degradation metrics",
    )
    p.add_argument(
        "--smoke", action="store_true", help="small n=8 sweep (the CI job)"
    )
    p.add_argument(
        "--spec", default=None, help="explicit faults campaign spec (overrides --smoke)"
    )
    p.add_argument("--workers", type=int, default=1, help="worker processes")
    p.add_argument(
        "--fresh", action="store_true", help="ignore cached results and re-run everything"
    )
    p.add_argument("--campaign-dir", default="campaigns")
    p.add_argument("--quiet", action="store_true", help="no per-trial progress on stderr")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "stream",
        help="open-loop saturation sweep with knee detection",
    )
    p.add_argument(
        "--smoke", action="store_true", help="small n=8 rate ladder (the CI job)"
    )
    p.add_argument(
        "--spec", default=None, help="explicit streaming campaign spec (overrides --smoke)"
    )
    p.add_argument("--workers", type=int, default=1, help="worker processes")
    p.add_argument(
        "--fresh", action="store_true", help="ignore cached results and re-run everything"
    )
    p.add_argument("--campaign-dir", default="campaigns")
    p.add_argument("--quiet", action="store_true", help="no per-trial progress on stderr")
    p.set_defaults(func=cmd_stream)

    p = sub.add_parser(
        "serve",
        help="live NDJSON-over-TCP injection service",
    )
    p.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="bounded-dor")
    p.add_argument("--n", type=int, default=16)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--queues", choices=["central", "incoming"], default="central")
    p.add_argument("--delta", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--torus", action="store_true")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0, help="TCP port (0 binds an ephemeral port)"
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "analyze",
        help="static deadlock (CDG), queue-bound (bounds) & lint analysis",
    )
    p.add_argument(
        "engine",
        choices=["cdg", "bounds", "lint", "all"],
        help="cdg: channel-dependency-graph deadlock verdicts; "
        "bounds: static queue-bound certifier vs the runtime oracle; "
        "lint: AST reproducibility lint; all: every engine",
    )
    p.add_argument("--n", type=int, nargs="+", default=[4], help="side lengths")
    p.add_argument(
        "--k", type=int, nargs="+", default=[1, 2, 4], help="queue capacities"
    )
    p.add_argument(
        "--topologies",
        nargs="+",
        choices=list(TOPOLOGY_NAMES),
        help="topology subset",
    )
    p.add_argument("--routers", nargs="+", help="subset of registered routers")
    p.add_argument("--json", action="store_true", help="CDG verdicts as JSON")
    p.add_argument(
        "--format",
        choices=["text", "json", "markdown"],
        default="text",
        help="markdown (cdg engine only) emits the docs/TOPOLOGY.md verdict "
        "table at the first --n and --k; json is equivalent to --json",
    )
    p.add_argument(
        "--root", default=None, help="repo root to lint (default: autodetect)"
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the lint baseline with the current findings",
    )
    p.set_defaults(func=cmd_analyze)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
