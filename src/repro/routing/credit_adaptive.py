"""Credit-based minimal adaptive routing with an escape channel (any d).

Among the minimal (profitable) outports of a packet, the router picks the
neighbour with the most downstream free space — *credits*, read through the
simulator's destination-free occupancy probe — so load spreads over every
minimal path.  Unrestricted minimal adaptivity deadlocks (the classic turn
cycle; see ``greedy-adaptive``'s CYCLIC verdict), so adaptivity is fenced
by two structural rules that generalise Theorem 15's four-queue
organization to d dimensions:

1. **Negative-first adaptive order.**  The adaptive axes (all but the
   highest) are corrected first, and every profitable *negative* adaptive
   direction is taken before any positive one.  Chains of negative moves
   strictly decrease the coordinate sum and positive chains strictly
   increase it, with only a negative->positive bridge, so the blockable
   sub-relation of the channel-dependency graph is acyclic on any mesh.
2. **Dimension-ordered escape channel.**  The highest axis is entered only
   once the adaptive axes are done, and escape traffic runs strictly
   straight with priority on its straight outlink.  Escape queues therefore
   drain every step they are nonempty (straight arrivals land in escape
   queues, which always accept; deliveries always succeed), which is
   exactly the Theorem 15 N/S invariant — so escape queues always accept,
   and the static certifier bounds every queue by ``k``.

In 2D the turn relation this produces coincides exactly with the
dimension-order turn set, and the CDG/bounds verdicts match
``bounded-dor``: DEADLOCK_FREE and BOUNDED(b=k) on meshes of any
dimension, CYCLIC/UNBOUNDED[wedged-backlog] on tori (the wrap re-closes
the escape ring).  On irregular topologies (``regular = False``, e.g. the
sparse-pillar mesh) the escape axis does not exist at every node, so the
router falls back to plain credit-steered minimal routing with every queue
capacity-gated, and the analyzers get the conservative all-blocking
minimal model.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.topology import Topology
from repro.mesh.visibility import Offer, PacketView


class CreditAdaptiveRouter(RoutingAlgorithm):
    """Minimal adaptive routing by downstream credits, deadlock-fenced by a
    dimension-ordered escape channel.

    Args:
        queue_capacity: ``k``, the size of each incoming queue.
    """

    name = "credit-adaptive"
    destination_exchangeable = True
    minimal = True
    dimension_ordered = False
    # Every inlink queue of an empty node has occupancy 0 < k, so inqueue
    # accepts all offers regardless of regularity (simulator fast path).
    accepts_all_into_empty = True
    uses_credit = True

    def __init__(self, queue_capacity: int) -> None:
        super().__init__(QueueSpec(queue_capacity, kind="incoming"))
        # Defaults cover direct (simulator-free) use on the 2D mesh; the
        # simulator rebinds both before any packet moves.
        self._escape_axis = 1
        self._regular = True
        self._credit: Callable[[tuple[int, ...], Any], int] | None = None

    def bind_topology(self, topology: Topology) -> None:
        self._escape_axis = max(d.axis for d in topology.directions)
        self._regular = topology.regular

    def attach_credit_probe(self, probe: Callable[[tuple[int, ...], Any], int]) -> None:
        self._credit = probe

    def enumerate_transitions(self, topology, k):
        from repro.mesh.transitions import (
            TransitionModel,
            escape_channel_turns,
            model_from_contract,
        )

        directions = topology.directions
        if not topology.regular:
            # No node-independent escape axis: every queue is capacity-gated
            # at runtime, so the sound model is the all-blocking minimal one.
            return model_from_contract(
                queue_kind=self.queue_spec.kind,
                minimal=True,
                dimension_ordered=False,
                note=f"{self.name}: irregular topology, conservative minimal model",
                directions=directions,
            )
        last_axis = max(d.axis for d in directions)
        escape = frozenset(d for d in directions if d.axis == last_axis)
        return TransitionModel(
            queue_kind=self.queue_spec.kind,
            turns=escape_channel_turns(directions),
            blocking_keys=frozenset(directions) - escape,
            note=(
                f"{self.name}: negative-first adaptive axes, "
                "escape queues on the highest axis always accept"
            ),
            drain_keys=escape,
        )

    # -- scheduling ----------------------------------------------------------

    def _allowed(self, profitable: frozenset[Direction]) -> list[Direction]:
        """The outports the discipline permits, in deterministic order."""
        if not self._regular:
            return sorted(profitable)
        adaptive = sorted(d for d in profitable if d.axis != self._escape_axis)
        if adaptive:
            negative = [d for d in adaptive if d.sign < 0]
            return negative or adaptive
        return sorted(profitable)

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        chosen: dict[Direction, PacketView] = {}
        scheduled: set[int] = set()
        keys = sorted(ctx.queue_keys)
        # Escape packets first, straight with priority: this is the drain
        # invariant the static model declares, so it must hold by schedule
        # construction, not by luck of the credit comparison.
        if self._regular:
            for key in keys:
                if key.axis != self._escape_axis:
                    continue
                views = ctx.queue(key)
                if not views:
                    continue
                head = views[0]
                straight = key.opposite
                if straight in head.profitable and straight not in chosen:
                    chosen[straight] = head
                    scheduled.add(id(head))
        # Everything else steers by credit: most downstream free space wins,
        # ties to the smallest port id.  Credits are start-of-step queue
        # occupancies (destination-free), identical for every node.
        credit = self._credit
        for key in keys:
            for view in ctx.queue(key):
                if id(view) in scheduled:
                    continue
                best = None
                best_rank = None
                for direction in self._allowed(view.profitable):
                    if direction in chosen:
                        continue
                    occupancy = credit(ctx.node, direction) if credit is not None else 0
                    rank = (occupancy, direction)
                    if best_rank is None or rank < best_rank:
                        best, best_rank = direction, rank
                if best is not None:
                    chosen[best] = view
                    scheduled.add(id(view))
        return chosen

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        capacity = self.queue_spec.capacity
        escape_axis = self._escape_axis if self._regular else None
        if len(offers) == 1:
            key = offers[0].came_from
            if key.axis == escape_axis or ctx.occupancy(key) < capacity:
                return offers
            return ()
        accepted: list[Offer] = []
        # Offers arrive at most one per inlink, so no within-queue contention.
        for off in offers:
            key = off.came_from
            if key.axis == escape_axis:
                accepted.append(off)  # escape queues always accept (drain inv.)
            elif ctx.occupancy(key) < capacity:
                accepted.append(off)
        return accepted
