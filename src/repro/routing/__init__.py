"""Routing algorithms for the bounded-queue mesh model.

Destination-exchangeable algorithms (subject to the paper's lower bounds):

- :class:`~repro.routing.dimension_order.DimensionOrderRouter` -- the
  Section 2 example: dimension-order paths, FIFO outqueue, rotating-priority
  inqueue, central queue.
- :class:`~repro.routing.bounded_dor.BoundedDimensionOrderRouter` -- the
  Theorem 15 algorithm: four incoming queues, straight-through priority,
  O(n^2/k + n) worst case.
- :class:`~repro.routing.adaptive.AlternatingAdaptiveRouter` -- the
  Section 2 adaptive example (switch profitable direction when blocked).
- :class:`~repro.routing.adaptive.GreedyAdaptiveRouter` -- schedules every
  packet on any free profitable outlink.

Not destination-exchangeable (the lower bound does not protect them, and the
paper proves Omega(n^2/k) for the first anyway):

- :class:`~repro.routing.farthest_first.FarthestFirstRouter` -- dimension
  order with the farthest-first outqueue policy.
"""

from repro.routing.base import (
    desired_dimension_order_direction,
    rotation_order,
)
from repro.routing.dimension_order import DimensionOrderRouter
from repro.routing.bounded_dor import BoundedDimensionOrderRouter
from repro.routing.farthest_first import FarthestFirstRouter
from repro.routing.adaptive import AlternatingAdaptiveRouter, GreedyAdaptiveRouter
from repro.routing.credit_adaptive import CreditAdaptiveRouter
from repro.routing.hot_potato import HotPotatoRouter
from repro.routing.randomized import RandomizedAdaptiveRouter
from repro.routing.delta_adaptive import BoundedExcursionRouter
from repro.routing.sort_route import ShearsortRouter, SortRouteResult

__all__ = [
    "desired_dimension_order_direction",
    "rotation_order",
    "DimensionOrderRouter",
    "BoundedDimensionOrderRouter",
    "FarthestFirstRouter",
    "AlternatingAdaptiveRouter",
    "CreditAdaptiveRouter",
    "GreedyAdaptiveRouter",
    "HotPotatoRouter",
    "RandomizedAdaptiveRouter",
    "BoundedExcursionRouter",
    "ShearsortRouter",
    "SortRouteResult",
]
