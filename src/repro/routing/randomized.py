"""A randomized minimal adaptive router -- the paper's third escape hatch.

The conclusion of the paper: to beat Omega(n^2/k^2) one must (1) use full
destination addresses, (2) route nonminimally, or (3) "incorporate
randomness in routing decisions."  This router is the (3) ablation: it is
exactly :class:`~repro.routing.adaptive.GreedyAdaptiveRouter` except that
the outlink preference order is drawn from a seeded RNG each step, so it is
*not deterministic* and the Section 3 construction (built against the
deterministic victim) loses its grip on it.

The randomness is destination-independent (the coin flips never see
addresses), so this is the mildest possible deviation from the lower
bound's model.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import Offer, PacketView
from repro.routing.base import accept_up_to_central_space


class RandomizedAdaptiveRouter(RoutingAlgorithm):
    """Greedy minimal adaptive routing with randomized tie-breaking.

    Args:
        queue_capacity: Packets per queue.
        seed: RNG seed (runs are reproducible given the seed).
        queue_kind: ``"central"`` or ``"incoming"``.
    """

    name = "randomized-adaptive"
    destination_exchangeable = True  # decisions never read destinations...
    minimal = True
    deterministic = False  # ...but they are random: Theorem 14 does not apply

    def __init__(
        self, queue_capacity: int, seed: int = 0, queue_kind: str = "central"
    ) -> None:
        super().__init__(QueueSpec(queue_capacity, kind=queue_kind))
        self._rng = np.random.default_rng(seed)

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        chosen: dict[Direction, PacketView] = {}
        order = list(ctx.packets)
        self._rng.shuffle(order)  # random service order
        for view in order:
            dirs = sorted(view.profitable)
            if not dirs:
                continue
            self._rng.shuffle(dirs)  # random direction preference
            for d in dirs:
                if d not in chosen:
                    chosen[d] = view
                    break
        return chosen

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        if self.queue_spec.kind == "central":
            return accept_up_to_central_space(ctx, offers, self.queue_spec.capacity)
        accepted = []
        for off in offers:
            if ctx.occupancy(off.came_from) < self.queue_spec.capacity:
                accepted.append(off)
        return accepted
