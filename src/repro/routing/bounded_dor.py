"""The Theorem 15 algorithm: dimension order with four incoming queues.

"There is a destination-exchangeable version of the dimension order routing
algorithm that routes any permutation on the n x n mesh in time
O((n^2/k) + n), where k is the size of the queue."

Each node has four incoming queues (North, South, East, West), each of size
``k``.  The outqueue gives priority to packets going *straight* (continuing
in the direction they arrived), resolving ties FIFO.  The inqueue policies
are asymmetric and are the heart of the proof:

- North and South queues always accept.  They can, because a nonempty
  N/S queue ejects a packet every step (straight column packets have
  priority, column arrivals always find room, deliveries always succeed).
- East and West queues accept only when holding fewer than ``k`` packets at
  the beginning of the step.

Because horizontal movement happens before vertical movement, packets in
N/S queues only ever move vertically, and the always-eject invariant holds.
This algorithm terminates on every permutation -- unlike the central-queue
variant -- and matches the Section 5 dimension-order lower bound
Omega(n^2/k).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.mesh.directions import DIRECTIONS, OPPOSITE, Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import Offer, PacketView
from repro.routing.base import (
    DOR_DIRECTION_CACHE,
    desired_dimension_order_direction,
)

#: ``direction -> (opposite queue << 2) | direction``: the packed slot of a
#: straight-continuing packet for each outlink (see ``outqueue``).
_STRAIGHT_SLOT: tuple[int, ...] = tuple(
    (OPPOSITE[d] << 2) | d for d in DIRECTIONS
)

#: The always-accepting inlink queues of the Theorem 15 organization.
_VERTICAL = (Direction.N, Direction.S)


class BoundedDimensionOrderRouter(RoutingAlgorithm):
    """Theorem 15's bounded-queue dimension-order router.

    Args:
        queue_capacity: ``k``, the size of each of the four incoming queues.
    """

    name = "bounded-dimension-order"
    destination_exchangeable = True
    minimal = True
    dimension_ordered = True
    # Every inlink queue of an empty node has occupancy 0 < k, so inqueue
    # accepts all offers in the order given (see the simulator fast path).
    accepts_all_into_empty = True

    def __init__(self, queue_capacity: int) -> None:
        super().__init__(QueueSpec(queue_capacity, kind="incoming"))

    def permutation_step_bound(self, n: int) -> int:
        # Theorem 15: any permutation routes in O(n^2/k + n) steps.
        from repro.core.bounds import theorem15_upper_bound

        return theorem15_upper_bound(n, self.queue_spec.capacity)

    def enumerate_transitions(self, topology, k):
        # The Theorem 15 proof invariant, handed to the static analyzer: a
        # nonempty N/S queue ejects every step, so those queues always
        # accept and can never be waited on.  Only E/W queues may refuse.
        # The ejection half of the invariant (a nonempty N/S queue transmits
        # one packet every step) is what lets the queue-bound certifier put
        # a static capacity bound on the always-accepting queues.
        from repro.mesh.transitions import model_from_contract

        return model_from_contract(
            queue_kind=self.queue_spec.kind,
            minimal=self.minimal,
            dimension_ordered=self.dimension_ordered,
            blocking_keys=frozenset({Direction.E, Direction.W}),
            note=f"{self.name}: Theorem 15 N/S queues always accept",
            drain_keys=frozenset({Direction.N, Direction.S}),
        )

    # The scheduling policy needs nothing from the context beyond the per-
    # queue views and the outlink set, so it is implemented context-free
    # (the simulator then skips the NodeContext build for phase (a)).
    fast_outqueue = True

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        return self.outqueue_from_views(
            ctx.node,
            ctx.state,
            ctx.out_directions,
            ctx.time,
            {key: ctx.queue(key) for key in ctx.queue_keys},
        )

    def outqueue_from_views(
        self,
        node: tuple[int, int],
        state: object,
        out_directions: tuple[Direction, ...],
        time: int,
        views_by_key: Mapping[object, Sequence[PacketView]],
    ) -> Mapping[Direction, PacketView]:
        # For each outlink, straight-moving packets (those sitting in the
        # queue of the opposite inlink) have priority; FIFO within a class.
        # A packet's desired direction is a function of the view alone, so
        # one pass records the FIFO-first view per (queue, direction) slot
        # -- packed into the int ``(queue key << 2) | direction`` -- and the
        # straight-priority scan reduces to int-keyed dict lookups.
        dd_get = DOR_DIRECTION_CACHE.get
        if len(views_by_key) == 1:
            (views,) = views_by_key.values()
            if len(views) == 1:
                # Lone packet: it is trivially first in its slot, and its
                # desired direction always has an outlink (it is profitable),
                # so the scan below would pick exactly this.
                view = views[0]
                d = dd_get(view.profitable)
                if d is None:
                    d = desired_dimension_order_direction(view.profitable)
                return {d: view}
        chosen: dict[Direction, PacketView] = {}
        firsts: dict[int, PacketView] = {}
        for key, views in views_by_key.items():
            base = key << 2
            for view in views:
                d = dd_get(view.profitable)
                if d is None:  # cache miss (first steps only): fill it
                    d = desired_dimension_order_direction(view.profitable)
                slot = base | d
                if slot not in firsts:
                    firsts[slot] = view
        get = firsts.get
        for direction in out_directions:
            pick = get(_STRAIGHT_SLOT[direction])
            if pick is None:
                straight_key = OPPOSITE[direction]
                for key in views_by_key:
                    if key is not straight_key:
                        pick = get(key << 2 | direction)
                        if pick is not None:
                            break
            if pick is not None:
                chosen[direction] = pick
        return chosen

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        capacity = self.queue_spec.capacity
        if len(offers) == 1:
            # Lone offer: return the given sequence itself (all-or-nothing),
            # sparing a list allocation on the commonest inqueue shape.
            queue_key = offers[0].came_from
            if queue_key in _VERTICAL or ctx.occupancy(queue_key) < capacity:
                return offers
            return ()
        accepted: list[Offer] = []
        # Offers arrive at most one per inlink, so no within-queue contention.
        for off in offers:
            queue_key = off.came_from
            if queue_key in _VERTICAL:
                accepted.append(off)  # N/S queues always accept (Thm 15 proof)
            elif ctx.occupancy(queue_key) < capacity:
                accepted.append(off)
        return accepted
