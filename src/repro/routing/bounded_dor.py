"""The Theorem 15 algorithm: dimension order with four incoming queues.

"There is a destination-exchangeable version of the dimension order routing
algorithm that routes any permutation on the n x n mesh in time
O((n^2/k) + n), where k is the size of the queue."

Each node has four incoming queues (North, South, East, West), each of size
``k``.  The outqueue gives priority to packets going *straight* (continuing
in the direction they arrived), resolving ties FIFO.  The inqueue policies
are asymmetric and are the heart of the proof:

- North and South queues always accept.  They can, because a nonempty
  N/S queue ejects a packet every step (straight column packets have
  priority, column arrivals always find room, deliveries always succeed).
- East and West queues accept only when holding fewer than ``k`` packets at
  the beginning of the step.

Because horizontal movement happens before vertical movement, packets in
N/S queues only ever move vertically, and the always-eject invariant holds.
This algorithm terminates on every permutation -- unlike the central-queue
variant -- and matches the Section 5 dimension-order lower bound
Omega(n^2/k).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import Offer, PacketView
from repro.routing.base import desired_dimension_order_direction


class BoundedDimensionOrderRouter(RoutingAlgorithm):
    """Theorem 15's bounded-queue dimension-order router.

    Args:
        queue_capacity: ``k``, the size of each of the four incoming queues.
    """

    name = "bounded-dimension-order"
    destination_exchangeable = True
    minimal = True
    dimension_ordered = True

    def __init__(self, queue_capacity: int) -> None:
        super().__init__(QueueSpec(queue_capacity, kind="incoming"))

    def permutation_step_bound(self, n: int) -> int:
        # Theorem 15: any permutation routes in O(n^2/k + n) steps.
        from repro.core.bounds import theorem15_upper_bound

        return theorem15_upper_bound(n, self.queue_spec.capacity)

    def enumerate_transitions(self, topology, k):
        # The Theorem 15 proof invariant, handed to the static analyzer: a
        # nonempty N/S queue ejects every step, so those queues always
        # accept and can never be waited on.  Only E/W queues may refuse.
        from repro.mesh.transitions import model_from_contract

        return model_from_contract(
            queue_kind=self.queue_spec.kind,
            minimal=self.minimal,
            dimension_ordered=self.dimension_ordered,
            blocking_keys=frozenset({Direction.E, Direction.W}),
            note=f"{self.name}: Theorem 15 N/S queues always accept",
        )

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        # For each outlink, straight-moving packets (those sitting in the
        # queue of the opposite inlink) have priority; FIFO within a class.
        chosen: dict[Direction, PacketView] = {}
        scheduled: set[int] = set()
        for direction in ctx.out_directions:
            straight_key = direction.opposite
            pick: PacketView | None = None
            for view in ctx.queue(straight_key):
                if (
                    view.key not in scheduled
                    and desired_dimension_order_direction(view.profitable) == direction
                ):
                    pick = view
                    break
            if pick is None:
                for key in ctx.queue_keys:
                    if key == straight_key:
                        continue
                    for view in ctx.queue(key):
                        if (
                            view.key not in scheduled
                            and desired_dimension_order_direction(view.profitable)
                            == direction
                        ):
                            pick = view
                            break
                    if pick is not None:
                        break
            if pick is not None:
                chosen[direction] = pick
                scheduled.add(pick.key)
        return chosen

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        accepted: list[Offer] = []
        # Offers arrive at most one per inlink, so no within-queue contention.
        for off in offers:
            queue_key = off.came_from
            if queue_key in (Direction.N, Direction.S):
                accepted.append(off)  # N/S queues always accept (Thm 15 proof)
            elif ctx.occupancy(queue_key) < self.queue_spec.capacity:
                accepted.append(off)
        return accepted
