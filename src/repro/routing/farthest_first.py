"""Dimension-order routing with the farthest-first outqueue policy.

Farthest-first ("the next packet to be advanced in a dimension is the one
that has the farthest to go in that dimension", Section 5) is the classic
policy that routes any permutation in 2n-2 steps with unbounded queues
(Leighton).  It inspects the packet's remaining distance, so it is *not*
destination-exchangeable -- yet Section 5 extends the lower bound to it,
showing Omega(n^2/k) with queues of size k.  This implementation is the
victim for that experiment (E4).

Queue organization.  With a single central queue and a one-shot
accept-if-space inqueue, bounded-queue store-and-forward routing
exchange-deadlocks on head-on flows (two full neighbours refusing each
other forever) -- we observe this readily at k <= 3.  The default
organization is therefore the Theorem 15 one: four incoming queues with
straight-through priority, whose North/South queues provably always eject
and hence may always accept.  Farthest-first only reorders choices *within*
a priority class, so Theorem 15's termination argument carries over
unchanged.  Pass ``queue_kind="central"`` for the pure central-queue model
(bounded-step adversary runs only).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, cast

from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import FullPacketView, Offer, PacketView
from repro.routing.base import desired_dimension_order_direction


def _remaining_in_dimension(view: FullPacketView, direction: Direction) -> int:
    dx, dy = view.displacement
    return abs(dx) if direction.is_horizontal else abs(dy)


def _is_delivering(off: Offer) -> bool:
    """True when accepting this offer delivers the packet (one hop left)."""
    fview = cast(FullPacketView, off.view)
    dx, dy = fview.displacement
    return abs(dx) + abs(dy) == 1


class FarthestFirstRouter(RoutingAlgorithm):
    """Farthest-first dimension-order router with queues of size k.

    Args:
        queue_capacity: ``k``, packets per queue.
        queue_kind: ``"incoming"`` (default; terminates on every permutation
            by the Theorem 15 argument) or ``"central"`` (the bare model;
            may exchange-deadlock, use only for bounded-step runs).
    """

    name = "farthest-first"
    destination_exchangeable = False  # uses remaining distances
    minimal = True
    dimension_ordered = True

    def __init__(self, queue_capacity: int, queue_kind: str = "incoming") -> None:
        super().__init__(QueueSpec(queue_capacity, kind=queue_kind))
        # Incoming regime: an empty node's per-inlink queues all have
        # occupancy 0 < k, so every offer is accepted in the order given.
        # The central regime caps accepts at the free space and reorders.
        self.accepts_all_into_empty = queue_kind == "incoming"

    def enumerate_transitions(self, topology, k):
        # Incoming regime: the Theorem 15 argument carries over unchanged
        # (farthest-first only reorders within a priority class), so N/S
        # queues always accept.  Central regime: the single queue refuses
        # when full, like any accept-if-space policy.
        from repro.mesh.transitions import model_from_contract

        if self.queue_spec.kind == "incoming":
            return model_from_contract(
                queue_kind=self.queue_spec.kind,
                minimal=self.minimal,
                dimension_ordered=self.dimension_ordered,
                blocking_keys=frozenset({Direction.E, Direction.W}),
                note=f"{self.name}: Theorem 15 N/S queues always accept",
                drain_keys=frozenset({Direction.N, Direction.S}),
            )
        return model_from_contract(
            queue_kind=self.queue_spec.kind,
            minimal=self.minimal,
            dimension_ordered=self.dimension_ordered,
            note=f"{self.name}: central accept-if-space",
        )

    # -- outqueue -----------------------------------------------------------

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        if self.queue_spec.kind == "central":
            return self._outqueue_central(ctx)
        return self._outqueue_incoming(ctx)

    def _outqueue_central(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        best: dict[Direction, tuple[int, int, FullPacketView]] = {}
        for index, view in enumerate(ctx.packets):
            fview = cast(FullPacketView, view)
            direction = desired_dimension_order_direction(fview.profitable)
            if direction is None:
                continue
            distance = _remaining_in_dimension(fview, direction)
            rank = (-distance, index)  # farthest wins, FIFO breaks ties
            if direction not in best or rank < best[direction][:2]:
                best[direction] = (rank[0], rank[1], fview)
        return {d: entry[2] for d, entry in best.items()}

    def _outqueue_incoming(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        # Straight-through priority per outlink (Theorem 15), with
        # farthest-first replacing FIFO inside each priority class.
        chosen: dict[Direction, PacketView] = {}
        scheduled: set[int] = set()
        for direction in ctx.out_directions:
            pick = self._farthest(ctx.queue(direction.opposite), direction, scheduled)
            if pick is None:
                turners: list[PacketView] = []
                for key in ctx.queue_keys:
                    if key != direction.opposite:
                        turners.extend(ctx.queue(key))
                pick = self._farthest(turners, direction, scheduled)
            if pick is not None:
                chosen[direction] = pick
                scheduled.add(pick.key)
        return chosen

    @staticmethod
    def _farthest(
        candidates: Sequence[PacketView], direction: Direction, scheduled: set[int]
    ) -> FullPacketView | None:
        best: tuple[int, int] | None = None
        pick: FullPacketView | None = None
        for index, view in enumerate(candidates):
            fview = cast(FullPacketView, view)
            if fview.key in scheduled:
                continue
            if desired_dimension_order_direction(fview.profitable) != direction:
                continue
            rank = (-_remaining_in_dimension(fview, direction), index)
            if best is None or rank < best:
                best = rank
                pick = fview
        return pick

    # -- inqueue ------------------------------------------------------------

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        if self.queue_spec.kind == "central":
            return self._inqueue_central(ctx, offers)
        accepted: list[Offer] = []
        for off in offers:
            if _is_delivering(off):
                accepted.append(off)  # consumes no queue space
            elif off.came_from in (Direction.N, Direction.S):
                accepted.append(off)  # N/S queues always eject, hence accept
            elif ctx.occupancy(off.came_from) < self.queue_spec.capacity:
                accepted.append(off)
        return accepted

    def _inqueue_central(self, ctx: NodeContext, offers: Sequence[Offer]) -> list[Offer]:
        accepted: list[Offer] = []
        transit: list[Offer] = []
        for off in offers:
            (accepted if _is_delivering(off) else transit).append(off)
        free = self.queue_spec.capacity - ctx.total_occupancy
        if free <= 0:
            return accepted

        def total_remaining(off: Offer) -> tuple[int, int]:
            fview = cast(FullPacketView, off.view)
            dx, dy = fview.displacement
            return (-(abs(dx) + abs(dy)), int(off.came_from))

        accepted.extend(sorted(transit, key=total_remaining)[:free])
        return accepted
