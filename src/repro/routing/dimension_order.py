"""The Section 2 example algorithm: dimension order, FIFO, rotating inqueue.

"One example of a destination-exchangeable algorithm is the dimension order
algorithm with FIFO queues and round-robin inqueue policy."

Packets travel along their row first, then their column, waiting in a single
central queue of size ``k`` per node.  The outqueue serves each outlink with
the earliest-arrived packet that wants it; the inqueue accepts packets in
rotating direction priority while space remains.

Termination caveat (documented, deliberate): with a central queue and a
conservative accept-if-space inqueue, head-on flows can exchange-deadlock
(two full neighbours each refusing the other's packet forever).  This is a
real property of the model -- avoiding it is exactly why Theorem 15 switches
to four incoming queues (:class:`~repro.routing.bounded_dor.
BoundedDimensionOrderRouter`).  Lower-bound experiments run this router for
a bounded number of steps, which is all Theorem 13 requires.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import Offer, PacketView
from repro.routing.base import (
    accept_up_to_central_space,
    desired_dimension_order_direction,
)


class DimensionOrderRouter(RoutingAlgorithm):
    """Dimension-order routing with a central queue (destination-exchangeable).

    Args:
        queue_capacity: The paper's ``k`` -- packets per node.
    """

    name = "dimension-order"
    destination_exchangeable = True
    minimal = True
    dimension_ordered = True

    def __init__(self, queue_capacity: int) -> None:
        super().__init__(QueueSpec(queue_capacity, kind="central"))

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        chosen: dict[Direction, PacketView] = {}
        for view in ctx.packets:  # arrival (FIFO) order
            direction = desired_dimension_order_direction(view.profitable)
            if direction is not None and direction not in chosen:
                chosen[direction] = view
            if len(chosen) == len(ctx.out_directions):
                break
        return chosen

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        return accept_up_to_central_space(ctx, offers, self.queue_spec.capacity)
