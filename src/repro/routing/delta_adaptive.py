"""Bounded-excursion adaptive routing: Section 5's nonminimal class, live.

The nonminimal extension bounds Omega(n^2 / ((delta+1)^3 k^2)) for
destination-exchangeable algorithms whose packets never stray more than
``delta`` nodes beyond the rectangle spanned by their source and
destination.  This router realizes that class: it is the greedy minimal
adaptive router plus a per-packet *deflection budget* of ``delta``
unprofitable moves, spent only when the packet was refused on the previous
step and no profitable outlink is free.

Budget accounting uses only packet state and profitable outlinks, so the
algorithm stays destination-exchangeable.  Each unprofitable move increases
the remaining distance by exactly one, so a packet ends at most ``delta``
hops outside its current minimal rectangle -- the Section 5 class with
parameter ``delta``.

What the budget buys -- and what it cannot.  A single unit dissolves the
canonical head-on exchange deadlock (two packets, full k=1 queues, facing
each other): staggered patience makes one yield perpendicular, and both
proceed.  But on *dense* central-queue instances, large multi-packet knots
re-form faster than fixed budgets can drain them; once budgets hit zero the
router is purely minimal again and the knot is permanent.  This is the
empirical face of Section 5's result: a fixed delta leaves the
Omega(n^2/((delta+1)^3 k^2)) bound intact, and genuinely escaping it takes
*unbounded* deflection (hot-potato routing, whose excursions grow with
congestion).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import Offer, PacketView
from repro.routing.base import accept_up_to_central_space, rotation_order


class BoundedExcursionRouter(RoutingAlgorithm):
    """Greedy adaptive routing with a delta-bounded deflection budget.

    Args:
        queue_capacity: Packets per queue.
        delta: Unprofitable moves a packet may make in its lifetime
            (0 = purely minimal).
        queue_kind: ``"central"`` or ``"incoming"``.

    Packet state: ``(budget_left, last_scheduled_step, last_scheduled_node,
    consecutive_refusals)``.
    """

    name = "bounded-excursion"
    destination_exchangeable = True
    minimal = False  # may take unprofitable outlinks (delta of them)

    #: Refusals in a row before one unit of deflection budget is spent.
    PATIENCE = 2

    def __init__(
        self, queue_capacity: int, delta: int = 1, queue_kind: str = "central"
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        super().__init__(QueueSpec(queue_capacity, kind=queue_kind))
        self.delta = delta

    def excursion_delta(self) -> int:
        return self.delta

    def initial_packet_state(self, view: PacketView) -> tuple[int, int, None, int]:
        return (self.delta, -1, None, 0)

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        chosen: dict[Direction, PacketView] = {}
        preference = rotation_order(ctx.time)
        for view in ctx.packets:
            if not view.profitable:
                continue
            budget, scheduled_at, scheduled_node, refusals = view.state
            if scheduled_at == ctx.time - 1 and scheduled_node == ctx.node:
                refusals += 1  # still where it was scheduled: refused
            elif scheduled_at == ctx.time - 1:
                refusals = 0  # it moved: progress resets patience
            placed = None
            # Staggered patience (by packet identity) breaks head-on
            # symmetry: one packet deflects a step before its counterpart,
            # which then finds the path clear and never needs to deflect.
            patience = self.PATIENCE + view.key % 2
            if refusals < patience or budget == 0:
                placed = self._pick_profitable(view, chosen)
            else:
                # Out of patience with the profitable outlinks: spend one
                # deflection to route around the blockage.  Perpendicular
                # deflections first -- stepping directly backward would just
                # rebuild the same jam one node over.
                # Per-packet rotation of the preference order breaks the
                # symmetry of two head-on packets deflecting in lockstep
                # (packet identity is destination-exchangeable information).
                spin = view.key % 4
                deflect_order = preference[spin:] + preference[:spin]
                for backtrack_ok in (False, True):
                    for d in deflect_order:
                        if d in view.profitable or d not in ctx.out_directions:
                            continue
                        if d in chosen:
                            continue
                        if not backtrack_ok and d.opposite in view.profitable:
                            continue
                        placed = d
                        break
                    if placed is not None:
                        break
                if placed is not None:
                    budget -= 1
                    refusals = 0
                else:  # no unprofitable outlink free: retry profitably
                    placed = self._pick_profitable(view, chosen)
            if placed is not None:
                chosen[placed] = view
                view.state = (budget, ctx.time, ctx.node, refusals)
        return chosen

    @staticmethod
    def _pick_profitable(
        view: PacketView, chosen: dict[Direction, PacketView]
    ) -> Direction | None:
        """Horizontal-first profitable preference: after a perpendicular
        deflection this resumes cross-jam progress instead of undoing it."""
        for d in (Direction.E, Direction.W, Direction.N, Direction.S):
            if d in view.profitable and d not in chosen:
                return d
        return None

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        if self.queue_spec.kind == "central":
            return accept_up_to_central_space(ctx, offers, self.queue_spec.capacity)
        accepted = []
        for off in offers:
            if ctx.occupancy(off.came_from) < self.queue_spec.capacity:
                accepted.append(off)
        return accepted
