"""Sort-then-route: the Section 1.2 baseline family, as a runnable engine.

"Another approach to permutation routing is to sort blocks of packets by
destination and then advance them to their destinations by the dimension
order algorithm.  Packets in these algorithms may take paths that are
nonminimal..."  (Kunde; Leighton-Makedon-Tollis; Rajasekaran-Overholt.)

This module implements the family's simplest representative: **shearsort**
by destination snake index, followed by greedy dimension-order routing.
On a *full* permutation the sort alone delivers every packet (rank r ends
at snake position r = its destination); on partial permutations the short
second phase finishes the job.  Time is O(n log n) -- Kunde's refined block
variant achieves 2n + O(n/k), but already this simplest member exhibits
everything the paper says about the class:

- it uses full destination addresses (sort keys), so it is far outside the
  destination-exchangeable model;
- it is nonminimal (sorting moves packets away from their destinations);
- it relies on the *compare-exchange* primitive of the mesh-sorting
  literature -- two neighbours swapping packets in one step -- which the
  bounded-queue store-and-forward model of Section 2 does not even provide
  (a conservative inqueue can never accept from a full neighbour).  That
  mismatch is precisely why the paper calls these algorithms "too
  complicated, and too specifically tailored to static permutations and
  synchronous networks to be practical."

Because of the swap primitive, the sort phase runs in its own engine; the
route phase reuses the standard simulator with an unbounded-queue
farthest-first router.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mesh.packet import Packet
from repro.mesh.simulator import Simulator
from repro.mesh.topology import Mesh
from repro.routing.farthest_first import FarthestFirstRouter


@dataclass
class SortRouteResult:
    """Outcome of one sort-then-route run.

    Attributes:
        completed: Everything delivered.
        sort_steps: Compare-exchange steps used by shearsort.
        route_steps: Dimension-order steps used by the cleanup phase
            (0 for full permutations -- the sort already delivers).
        total_steps: Their sum.
        max_node_load: Peak packets per node (1 during the sort; the
            cleanup phase's queues are reported by the inner simulator).
        swaps: Total compare-exchange swaps performed.
    """

    completed: bool
    sort_steps: int
    route_steps: int
    max_node_load: int
    swaps: int

    @property
    def total_steps(self) -> int:
        return self.sort_steps + self.route_steps


class ShearsortRouter:
    """Shearsort-by-destination followed by dimension-order cleanup.

    Args:
        n: Mesh side.

    The engine keeps at most one packet per node throughout the sort (the
    defining property of sorting networks on meshes), so it accepts
    (partial) permutations only.
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        self.n = n

    # -- snake order --------------------------------------------------------

    def snake_index(self, node: tuple[int, int]) -> int:
        """Boustrophedon order: row 0 west-to-east, row 1 east-to-west, ..."""
        x, y = node
        return y * self.n + (x if y % 2 == 0 else self.n - 1 - x)

    def node_at_snake(self, index: int) -> tuple[int, int]:
        y, r = divmod(index, self.n)
        x = r if y % 2 == 0 else self.n - 1 - r
        return (x, y)

    # -- the run ---------------------------------------------------------------

    def route(self, packets: list[Packet]) -> SortRouteResult:
        n = self.n
        grid: dict[tuple[int, int], Packet | None] = {}
        for p in packets:
            if p.source in grid:
                raise ValueError("sort-then-route needs at most one packet per node")
            p.pos = p.source
            grid[p.source] = p

        def key(node: tuple[int, int]) -> int:
            p = grid.get(node)
            # Empty cells sort last so packets compact to the snake prefix.
            return self.snake_index(p.dest) if p is not None else n * n

        swaps = 0
        steps = 0

        def compare_exchange(a: tuple[int, int], b: tuple[int, int], ascending: bool) -> None:
            nonlocal swaps
            ka, kb = key(a), key(b)
            if (ka > kb) if ascending else (ka < kb):
                grid[a], grid[b] = grid.get(b), grid.get(a)
                for node in (a, b):
                    p = grid.get(node)
                    if p is not None:
                        p.pos = node
                swaps += 1

        def odd_even_pass_rows() -> int:
            """One full odd-even transposition sort of every row (snake
            directions), n phases."""
            nonlocal steps
            for phase in range(n):
                for y in range(n):
                    ascending = y % 2 == 0
                    for x in range(phase % 2, n - 1, 2):
                        compare_exchange((x, y), (x + 1, y), ascending)
                steps += 1
            return n

        def odd_even_pass_columns() -> int:
            nonlocal steps
            for phase in range(n):
                for x in range(n):
                    for y in range(phase % 2, n - 1, 2):
                        compare_exchange((x, y), (x, y + 1), True)
                steps += 1
            return n

        rounds = math.ceil(math.log2(n)) + 1
        for _ in range(rounds):
            odd_even_pass_rows()
            odd_even_pass_columns()
        odd_even_pass_rows()  # final row pass completes the snake order

        # Cleanup phase: whatever is not yet home routes dimension-order.
        remaining = [p for p in packets if p.pos != p.dest]
        for p in remaining:
            p.source = p.pos  # reroute from the sorted position
        route_steps = 0
        max_load = 1
        if remaining:
            sim = Simulator(
                Mesh(n),
                FarthestFirstRouter(n, "central"),
                remaining,
            )
            inner = sim.run(max_steps=20 * n + 200)
            route_steps = inner.steps
            max_load = max(max_load, inner.max_node_load)
            completed = inner.completed
        else:
            completed = True

        return SortRouteResult(
            completed=completed,
            sort_steps=steps,
            route_steps=route_steps,
            max_node_load=max_load,
            swaps=swaps,
        )
