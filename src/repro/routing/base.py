"""Shared policy building blocks.

Everything here consumes only destination-exchangeable information (packet
state, source, profitable outlinks, node state, step number), so any
algorithm assembled from these helpers stays inside the lower bound's model.
"""

from __future__ import annotations

from typing import Sequence

from repro.mesh.directions import DIRECTIONS, Direction
from repro.mesh.interfaces import NodeContext
from repro.mesh.visibility import Offer, PacketView

# Re-exported for algorithm implementations.
from repro.mesh.interfaces import RoutingAlgorithm, RoutingContract  # noqa: F401
from repro.mesh.queues import CENTRAL, QueueSpec  # noqa: F401


def desired_dimension_order_direction(profitable: frozenset[Direction]) -> Direction | None:
    """The dimension-order (row-first) move implied by a profitable set.

    A packet travels along its row until it reaches its destination column,
    then moves in the column (Section 1.1).  Horizontal profit therefore
    takes precedence; ties (possible only on the torus at exact half
    circumference) break toward the lower direction value for determinism.
    Returns None when nothing is profitable (the packet is at its
    destination, which the simulator never lets a policy see).
    """
    cached = DOR_DIRECTION_CACHE.get(profitable)
    if cached is not None or profitable in DOR_DIRECTION_CACHE:
        return cached
    horizontal = [d for d in (Direction.E, Direction.W) if d in profitable]
    if horizontal:
        result: Direction | None = min(horizontal)
    else:
        vertical = [d for d in (Direction.N, Direction.S) if d in profitable]
        result = min(vertical) if vertical else None
    DOR_DIRECTION_CACHE[profitable] = result
    return result


#: Memo for :func:`desired_dimension_order_direction`.  The domain is tiny
#: (at most one horizontal and one vertical direction can be profitable, so
#: nine sets plus torus half-circumference ties) and the topology layer
#: interns the frozensets, making lookups cheap on the simulator hot path.
#: Public so per-view hot loops (the bounded dimension-order outqueue) can
#: probe it directly and fall back to the function only on a miss; a cached
#: None is indistinguishable from a miss, which is harmless -- the function
#: recomputes None cheaply and in-network packets never map to None anyway.
DOR_DIRECTION_CACHE: dict[frozenset[Direction], Direction | None] = {}


def rotation_order(time: int) -> tuple[Direction, ...]:
    """Direction priority rotated by the step number.

    A stateless stand-in for the round-robin inqueue pointer: each node
    could maintain an identical counter as node state (the model allows a
    counter that increments every step), so deriving it from the global
    clock changes no behaviour while avoiding per-node state churn.
    """
    r = time % 4
    return DIRECTIONS[r:] + DIRECTIONS[:r]


def accept_up_to_central_space(
    ctx: NodeContext, offers: Sequence[Offer], capacity: int
) -> list[Offer]:
    """Accept offers in rotating-priority order while central space remains.

    Conservative: counts space against beginning-of-step occupancy, never
    against hoped-for departures, as required to guarantee no overflow.
    """
    free = capacity - ctx.total_occupancy
    if free <= 0:
        return []
    order = {d: i for i, d in enumerate(rotation_order(ctx.time))}
    ranked = sorted(offers, key=lambda off: order[off.came_from])
    return ranked[:free]


def fifo_pick(
    candidates: Sequence[PacketView], taken: set[int]
) -> PacketView | None:
    """First candidate (arrival order) not already scheduled this step."""
    for view in candidates:
        if view.key not in taken:
            return view
    return None
