"""Minimal adaptive routers (destination-exchangeable).

Two adaptive algorithms in the Section 2 mould.  Both make decisions purely
from profitable outlinks and per-packet state, so both fall under the
Theorem 14 lower bound: for each there exists a permutation needing
Omega(n^2/k^2) steps, and the adversary of Section 3 constructs it.

- :class:`AlternatingAdaptiveRouter` is the paper's own example: "each
  packet moves in one profitable direction until it is blocked by
  congestion, and then moves in its other profitable direction, continuing
  this alternation until it reaches its destination."
- :class:`GreedyAdaptiveRouter` saturates outlinks: every packet may be
  scheduled on any free profitable outlink, maximizing per-step link usage.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import Offer, PacketView
from repro.routing.base import accept_up_to_central_space, rotation_order


class AlternatingAdaptiveRouter(RoutingAlgorithm):
    """Section 2's adaptive example: alternate profitable directions when blocked.

    Packet state is ``(preferred_direction_value, last_scheduled_step,
    last_scheduled_node)``.  When a packet is still at the node where it was
    scheduled one step earlier, it was refused (blocked by congestion), so
    it switches to its other profitable direction.  All information used --
    packet state and profitable outlinks -- is destination-exchangeable.

    Args:
        queue_capacity: Packets per queue (the paper's ``k``).
        queue_kind: ``"central"`` (paper's base model) or ``"incoming"``
            (Section 5's alternative queue type, which avoids head-on
            exchange deadlocks in practice).
    """

    name = "alternating-adaptive"
    destination_exchangeable = True
    minimal = True

    def __init__(self, queue_capacity: int, queue_kind: str = "central") -> None:
        super().__init__(QueueSpec(queue_capacity, kind=queue_kind))

    def initial_packet_state(self, view: PacketView) -> tuple[int, int, None]:
        preferred = min(view.profitable) if view.profitable else Direction.N
        return (int(preferred), -1, None)

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        chosen: dict[Direction, PacketView] = {}
        for view in ctx.packets:  # arrival (FIFO) order
            preferred_value, scheduled_at, scheduled_node = view.state
            preferred = Direction(preferred_value)
            profitable = view.profitable
            if not profitable:
                continue
            refused_here = (
                scheduled_at == ctx.time - 1 and scheduled_node == ctx.node
            )
            if preferred not in profitable or refused_here:
                # Direction exhausted, or the packet was refused last step:
                # alternate to the other profitable direction.
                others = [d for d in sorted(profitable) if d != preferred]
                preferred = others[0] if others else min(profitable)
            direction = None
            if preferred not in chosen:
                direction = preferred
            else:
                # Outlink already claimed this step -- that, too, is
                # congestion; try the other profitable direction now.
                for d in sorted(profitable):
                    if d not in chosen:
                        direction = d
                        break
            if direction is None:
                continue
            chosen[direction] = view
            view.state = (int(direction), ctx.time, ctx.node)
        return chosen

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        if self.queue_spec.kind == "central":
            return accept_up_to_central_space(ctx, offers, self.queue_spec.capacity)
        accepted = []
        for off in offers:
            if ctx.occupancy(off.came_from) < self.queue_spec.capacity:
                accepted.append(off)
        return accepted


class GreedyAdaptiveRouter(RoutingAlgorithm):
    """Schedule every packet on any free profitable outlink.

    Maximizes outlink utilization: packets are considered in arrival order
    and claim the first free profitable outlink (rotating the preference
    order with the step number so no direction is systematically starved).
    Stateless apart from that rotation; destination-exchangeable.
    """

    name = "greedy-adaptive"
    destination_exchangeable = True
    minimal = True

    def __init__(self, queue_capacity: int, queue_kind: str = "central") -> None:
        super().__init__(QueueSpec(queue_capacity, kind=queue_kind))
        # Incoming regime: occupancy 0 < k on every inlink queue of an empty
        # node, so all offers are accepted in order.  Central regime caps
        # accepts at free space, so the declaration would be untrue there.
        self.accepts_all_into_empty = queue_kind == "incoming"

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        chosen: dict[Direction, PacketView] = {}
        preference = rotation_order(ctx.time)
        for view in ctx.packets:
            for direction in preference:
                if direction in view.profitable and direction not in chosen:
                    chosen[direction] = view
                    break
            if len(chosen) == len(ctx.out_directions):
                break
        return chosen

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        if self.queue_spec.kind == "central":
            return accept_up_to_central_space(ctx, offers, self.queue_spec.capacity)
        accepted = []
        for off in offers:
            if ctx.occupancy(off.came_from) < self.queue_spec.capacity:
                accepted.append(off)
        return accepted
