"""Hot-potato (deflection) routing: the paper's nonminimal example.

Section 2 names the O(n^{3/2}) hot-potato algorithm of Bar-Noy et al. as a
*destination-exchangeable but nonminimal* algorithm, and Section 5's
nonminimal extension explains why deflection escapes the Omega(n^2/k^2)
bound: packets may be pushed arbitrarily far off their minimal rectangles.

In hot-potato routing nodes have no buffers: every packet received in a
step must leave in the next one.  Our model hosts this as a node of
capacity 4 (one slot per inlink) whose outqueue policy schedules *all* of
its packets on distinct outlinks and whose inqueue accepts everything --
acceptance is always safe because sends equal receives.

The deflection policy here is the classic age-based one: packets are
processed in decreasing age (steps since injection, carried in packet
state, which is destination-exchangeable information); each takes a free
profitable outlink if one remains, else is deflected onto any free outlink.
Age priority gives the oldest packet eventual precedence on profitable
links, which empirically delivers low-to-moderate loads quickly; like all
simple deflection schemes it has no worst-case delivery guarantee, so runs
use a step cap.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.mesh.directions import Direction
from repro.mesh.interfaces import NodeContext, RoutingAlgorithm
from repro.mesh.queues import QueueSpec
from repro.mesh.visibility import Offer, PacketView
from repro.routing.base import rotation_order


class HotPotatoRouter(RoutingAlgorithm):
    """Age-based deflection router (destination-exchangeable, nonminimal).

    Nodes hold at most one packet per inlink and forward everything every
    step.  Works on the mesh and the torus; on the mesh, boundary nodes
    have fewer outlinks, and the policy keeps a packet only when every
    outlink is already taken (possible only at boundaries, where arrivals
    are correspondingly fewer).
    """

    name = "hot-potato"
    destination_exchangeable = True
    minimal = False  # deflections move packets away from their destinations

    def __init__(self) -> None:
        super().__init__(QueueSpec(4, kind="central"))

    def initial_packet_state(self, view: PacketView) -> int:
        return 0  # age

    def enumerate_transitions(self, topology, k):
        # Bufferless deflection never refuses an offer (sends equal
        # receives), so no queue is blockable and the wait-for graph is
        # empty: statically deadlock-free, whatever turns packets take.
        # Every occupant departs every step (deflected if necessary), which
        # is the strongest drain guarantee the bound certifier knows.
        from repro.mesh.queues import CENTRAL
        from repro.mesh.transitions import model_from_contract

        return model_from_contract(
            queue_kind=self.queue_spec.kind,
            minimal=self.minimal,
            dimension_ordered=self.dimension_ordered,
            blocking_keys=frozenset(),
            note=f"{self.name}: bufferless, inqueue always accepts",
            drain_all_keys=frozenset({CENTRAL}),
        )

    def outqueue(self, ctx: NodeContext) -> Mapping[Direction, PacketView]:
        chosen: dict[Direction, PacketView] = {}
        # Oldest first; ties by key for determinism.
        ranked = sorted(ctx.packets, key=lambda v: (-v.state, v.key))
        deflected: list[PacketView] = []
        for view in ranked:
            placed = False
            for d in sorted(view.profitable):
                if d in ctx.out_directions and d not in chosen:
                    chosen[d] = view
                    placed = True
                    break
            if not placed:
                deflected.append(view)
        preference = rotation_order(ctx.time)
        for view in deflected:
            for d in preference:
                if d in ctx.out_directions and d not in chosen:
                    chosen[d] = view
                    break
            # A boundary node may genuinely run out of outlinks; the packet
            # stays (its slot frees an inlink's worth of capacity anyway).
        return chosen

    # Bufferless deflection accepts unconditionally, in particular into an
    # empty node (see the simulator fast path for this declaration).
    accepts_all_into_empty = True

    def inqueue(self, ctx: NodeContext, offers: Sequence[Offer]) -> Iterable[Offer]:
        return list(offers)  # bufferless: everything is accepted

    def after_step(self, ctx: NodeContext):
        for view in ctx.packets:
            view.state = view.state + 1  # everyone ages
        return ctx.state
