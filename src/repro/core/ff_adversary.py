"""The Section 5 farthest-first construction: Omega(n^2/k) without
destination-exchangeability.

Farthest-first inspects remaining distances, so the Lemma 10 argument does
not apply; the paper instead crafts exchanges that preserve every
*comparison* the farthest-first policy will make.  Geometry (Figure 4,
right): every node of the ``cn`` southernmost rows sends one packet; the
``N_i``-column is the ``(n+1-i)``-th column (level 1 is the easternmost
column, levels grow westward); destinations sit north of the band in the
corresponding column.

Initial arrangement: within each row, destination classes are
non-increasing west to east (so farther-destined packets are always west of
nearer-destined ones), and no ``N_i``-packet starts in its own column for
``i >= 2``.

Exchange rule: while ``t <= (j-1) dn``, an ``N_j``-packet scheduled to
enter its own ``N_j``-column is exchanged with an ``N_{j-1}``-packet that
is in the ``(j+1)``-box, not scheduled to enter the ``N_j``-column, and
westernmost in its row -- pushing the about-to-turn packet's destination
one column east and preserving the row ordering invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.adversary import ExchangeRecord
from repro.core.constants import FarthestFirstConstants
from repro.mesh.errors import AdversaryError
from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import ScheduledMove, Simulator
from repro.mesh.topology import Mesh


@dataclass(frozen=True)
class FfGeometry:
    """Geometry of the farthest-first construction (0-indexed)."""

    n: int
    cn: int
    levels: int  # protected levels (floor(l))
    num_classes: int  # total destination classes (columns used)

    def column(self, i: int) -> int:
        """0-indexed x of the N_i-column: the i-th column from the east."""
        return self.n - i

    def classify(self, dest: tuple[int, int]) -> int | None:
        level = self.n - dest[0]
        if 1 <= level <= self.num_classes and dest[1] >= self.cn:
            return level
        return None

    def in_box(self, node: tuple[int, int], i: int) -> bool:
        """The i-box: west of/including the N_i-column, within the band."""
        return node[0] <= self.column(i) and node[1] < self.cn

    def destination(self, level: int, j: int) -> tuple[int, int]:
        return (self.column(level), self.cn + j)


@dataclass
class FarthestFirstAdversary:
    """Interceptor applying the farthest-first exchange rule."""

    constants: FarthestFirstConstants
    geometry: FfGeometry
    log: bool = False
    exchange_count: int = 0
    records: list[ExchangeRecord] = field(default_factory=list)

    def __call__(self, sim: Simulator, schedule: list[ScheduledMove]) -> None:
        t = sim.time
        if t > self.constants.bound_steps:
            return
        geo, dn = self.geometry, self.constants.dn
        scheduled_target = {mv.packet.pid: mv.target for mv in schedule}

        for _ in range(len(schedule) + 16):
            exchanged = False
            for mv in schedule:
                j = geo.classify(mv.packet.dest)
                if j is None or j < 2:
                    continue
                if mv.target[0] != geo.column(j) or mv.target[1] >= geo.cn:
                    continue  # not entering its own column within the band
                if t > (j - 1) * dn:
                    continue  # the rule has expired for this class
                partner = self._find_partner(sim, mv.packet, j, scheduled_target)
                if partner is None:
                    raise AdversaryError(
                        f"step {t}: no eligible N_{j - 1}-packet (farthest-"
                        "first rule)"
                    )
                mv.packet.exchange_destinations(partner)
                self.exchange_count += 1
                if self.log:
                    self.records.append(
                        ExchangeRecord(t, "FF", j, mv.packet.pid, partner.pid)
                    )
                exchanged = True
            if not exchanged:
                return
        raise AdversaryError(f"exchange fixpoint not reached at step {t}")

    def _find_partner(
        self,
        sim: Simulator,
        exclude: Packet,
        j: int,
        scheduled_target: dict[int, tuple[int, int]],
    ) -> Packet | None:
        """An N_{j-1}-packet in the (j+1)-box, not scheduled to enter the
        N_j-column, westernmost in its row."""
        geo = self.geometry
        guard_x = geo.column(j)
        per_row_best: dict[int, Packet] = {}
        for p in sim.iter_packets():
            if p.pid == exclude.pid or geo.classify(p.dest) != j - 1:
                continue
            if not geo.in_box(p.pos, j + 1):
                continue
            target = scheduled_target.get(p.pid)
            if target is not None and target[0] == guard_x:
                continue
            row = p.pos[1]
            cur = per_row_best.get(row)
            if cur is None or (p.pos[0], p.pid) < (cur.pos[0], cur.pid):
                per_row_best[row] = p
        if not per_row_best:
            return None
        return min(per_row_best.values(), key=lambda p: (p.pos[0], p.pos[1], p.pid))


class FfLowerBoundConstruction:
    """Run the farthest-first construction against a farthest-first victim."""

    def __init__(
        self,
        n: int,
        algorithm_factory: Callable[[], RoutingAlgorithm],
        *,
        check_invariants: bool = False,
        log_exchanges: bool = False,
    ) -> None:
        self.algorithm_factory = algorithm_factory
        probe = algorithm_factory()
        if not probe.dimension_ordered or not probe.minimal:
            raise TypeError(
                f"{probe.name}: this construction targets minimal "
                "dimension-order (farthest-first) algorithms"
            )
        self.k = probe.queue_spec.node_capacity
        self.constants = FarthestFirstConstants.choose(n, self.k)
        n_, cn, p = n, self.constants.cn, self.constants.p
        num_classes = -(-(n_ * cn) // p)  # ceil: classes of size p (last short)
        if num_classes > n_ // 2:
            raise ValueError(
                f"n={n_}, k={self.k}: {num_classes} destination classes do "
                "not fit east of the sources"
            )
        self.geometry = FfGeometry(
            n=n_, cn=cn, levels=self.constants.l_floor, num_classes=num_classes
        )
        self.check_invariants = check_invariants
        self.log_exchanges = log_exchanges

    def build_packets(self) -> list[Packet]:
        """Column-major west-to-east fill with class labels descending.

        Guarantees the two arrangement invariants: within each row, classes
        are non-increasing eastward; and (because ``p >= 3 cn``) the class
        of the packet at cell ``(n-i, y)`` is well below ``i`` for
        ``i >= 2``, so no packet starts in its own column.
        """
        geo, p = self.geometry, self.constants.p
        total = geo.n * geo.cn
        members: dict[int, int] = {}
        pairs: dict[tuple[int, int], tuple[int, int]] = {}
        for idx in range(total):
            x, y = idx // geo.cn, idx % geo.cn
            # Descending class fill: westernmost cells get the highest class.
            rank_from_east = total - 1 - idx
            level = rank_from_east // p + 1
            j = members.get(level, 0)
            members[level] = j + 1
            pairs[(x, y)] = geo.destination(level, j)
        return [Packet(pid, src, dst) for pid, (src, dst) in enumerate(sorted(pairs.items()))]

    def run(self):
        from repro.core.construction import ConstructionResult

        packets = self.build_packets()
        self._all = {p.pid: p for p in packets}
        adversary = FarthestFirstAdversary(
            self.constants, self.geometry, log=self.log_exchanges
        )
        sim = Simulator(
            Mesh(self.constants.n),
            self.algorithm_factory(),
            packets,
            interceptor=adversary,
        )
        before: dict[int, tuple[int, int]] = {}
        for _ in range(self.constants.bound_steps):
            if self.check_invariants:
                before = {p.pid: p.pos for p in sim.iter_packets()}
            sim.step()
            if self.check_invariants:
                self._check(sim, before)

        return ConstructionResult(
            constants=self.constants,
            permutation=sorted((p.source, p.dest) for p in packets),
            bound_steps=self.constants.bound_steps,
            exchange_count=adversary.exchange_count,
            undelivered_at_bound=sim.in_flight,
            final_configuration=sim.configuration(),
            delivery_times=dict(sim.delivery_times),
            records=list(adversary.records),
            packet_table=sorted((p.pid, p.source, p.dest) for p in packets),
        )

    def _check(self, sim: Simulator, before: dict[int, tuple[int, int]]) -> None:
        from repro.core.construction import InvariantViolation

        geo, dn, t = self.geometry, self.constants.dn, sim.time
        # Row-ordering invariant and own-column confinement.
        in_band: dict[int, list[tuple[int, int]]] = {}
        for p in sim.iter_packets():
            j = geo.classify(p.dest)
            if j is None:
                continue
            x, y = p.pos
            if t <= (j - 1) * dn and x >= geo.column(j):
                raise InvariantViolation(
                    f"t={t}: class-{j} packet {p.pid} at {p.pos} reached its "
                    "own column during the protected phase"
                )
            if y < geo.cn and x < geo.column(j):
                in_band.setdefault(y, []).append((x, j))
        for y, entries in in_band.items():
            entries.sort()
            min_class_west = None  # smallest class among strictly-west cells
            idx = 0
            while idx < len(entries):
                x = entries[idx][0]
                group = [j for (gx, j) in entries[idx:] if gx == x]
                if min_class_west is not None and max(group) > min_class_west:
                    raise InvariantViolation(
                        f"t={t}: row {y}: class-{max(group)} packet at x={x} "
                        f"is east of a class-{min_class_west} packet"
                    )
                low = min(group)
                if min_class_west is None or low < min_class_west:
                    min_class_west = low
                idx += len(group)
        # Escape counting for protected boxes.
        escapes: dict[int, int] = {}
        for pid, pos_before in before.items():
            p = self._all[pid]
            for i in range(1, geo.levels + 1):
                if not geo.in_box(pos_before, i):
                    continue
                if geo.in_box(p.pos, i):
                    continue
                j = geo.classify(p.dest)
                if j is None or j < i:
                    continue
                if t <= (i - 1) * dn or (j > i and t <= i * dn):
                    raise InvariantViolation(
                        f"t={t}: class-{j} packet {pid} left the {i}-box "
                        "during a protected phase"
                    )
                if t <= i * dn:
                    escapes[i] = escapes.get(i, 0) + 1
                    if escapes[i] > 1:
                        raise InvariantViolation(
                            f"t={t}: two class-{i} packets left the {i}-box"
                        )
