"""The Section 3 adversary: exchange rules EX1-EX4 as a phase-(b) interceptor.

During each of the first ``floor(l) * dn`` steps, after the outqueue
policies have committed their schedules but before the inqueue policies see
them, the adversary inspects every scheduled move and applies:

    EX1. i >= 1, j > i:  an E_j-packet scheduled to enter the E_i-row west
         of the N_i-column (steps 1..i*dn) is exchanged with an eligible
         E_i-packet.
    EX2. i >= 1, j > i:  an N_j-packet scheduled to enter the N_i-column
         south of the E_i-row is exchanged with an eligible N_i-packet.
    EX3. i >= 1, j >= i: an E_j-packet scheduled to enter the N_i-column
         south of the E_i-row is exchanged with an eligible N_i-packet.
    EX4. i >= 1, j >= i: an N_j-packet scheduled to enter the E_i-row west
         of the N_i-column is exchanged with an eligible E_i-packet.

"Eligible" means: same class and level as required, currently in the
``(i-1)``-box, and not scheduled to enter the guarded column/row (Lemmas 3
and 4 prove such packets always exist).  An exchange can re-arm another
scheduled move (the partner may itself be scheduled toward a lower-level
column), so rules are applied to a fixpoint; each exchange strictly lowers
the triggering destination's level along any chain, so the loop terminates.

Because an exchange only swaps destinations -- and the views shown to a
destination-exchangeable algorithm do not contain destinations -- the
algorithm's behaviour is identical with or without the exchanges (Lemma 10),
which is what makes the final "constructed permutation" hard for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constants import AdaptiveConstants
from repro.core.geometry import E_CLASS, N_CLASS, BoxGeometry
from repro.mesh.errors import AdversaryError
from repro.mesh.packet import Packet
from repro.mesh.simulator import ScheduledMove, Simulator


@dataclass
class ExchangeRecord:
    """One applied exchange (for audit and tests)."""

    time: int
    rule: str
    level: int
    scheduled_pid: int
    partner_pid: int


@dataclass
class AdaptiveAdversary:
    """Interceptor implementing EX1-EX4 for one construction run.

    Install as ``Simulator(..., interceptor=adversary)``.  Inert after
    ``constants.bound_steps`` steps (the construction's horizon).
    """

    constants: AdaptiveConstants
    geometry: BoxGeometry
    log: bool = False
    exchange_count: int = 0
    records: list[ExchangeRecord] = field(default_factory=list)

    def __call__(self, sim: Simulator, schedule: list[ScheduledMove]) -> None:
        t = sim.time
        if t > self.constants.bound_steps:
            return
        scheduled_target = {mv.packet.pid: mv.target for mv in schedule}

        max_rounds = len(schedule) * (self.geometry.levels + 1) + 16
        for _ in range(max_rounds):
            exchanged = False
            for mv in schedule:
                applied = self._apply_rules(sim, mv, scheduled_target, t)
                if applied:
                    exchanged = True
            if not exchanged:
                return
        raise AdversaryError(
            f"exchange fixpoint not reached at step {t} (adversary bug)"
        )

    # -- rule evaluation ------------------------------------------------------

    def _apply_rules(
        self,
        sim: Simulator,
        mv: ScheduledMove,
        scheduled_target: dict[int, tuple[int, int]],
        t: int,
    ) -> bool:
        geo = self.geometry
        cls = geo.classify(mv.packet.dest)
        if cls is None:
            return False
        tag, j = cls
        x, y = mv.target
        dn = self.constants.dn

        # Entering an N_i-column south of the E_i-row?
        i = x - geo.cn + 2
        if 1 <= i <= geo.levels and y < geo.e_row(i) and t <= i * dn:
            if (tag == N_CLASS and j > i) or (tag == E_CLASS and j >= i):
                rule = "EX2" if tag == N_CLASS else "EX3"
                self._exchange(sim, mv, N_CLASS, i, rule, scheduled_target, t)
                return True

        # Entering an E_i-row west of the N_i-column?
        i = y - geo.cn + 2
        if 1 <= i <= geo.levels and x < geo.n_column(i) and t <= i * dn:
            if (tag == E_CLASS and j > i) or (tag == N_CLASS and j >= i):
                rule = "EX1" if tag == E_CLASS else "EX4"
                self._exchange(sim, mv, E_CLASS, i, rule, scheduled_target, t)
                return True

        return False

    def _exchange(
        self,
        sim: Simulator,
        mv: ScheduledMove,
        partner_class: str,
        i: int,
        rule: str,
        scheduled_target: dict[int, tuple[int, int]],
        t: int,
    ) -> None:
        partner = self._find_partner(sim, mv.packet, partner_class, i, scheduled_target)
        if partner is None:
            raise AdversaryError(
                f"step {t}: no eligible {partner_class}_{i}-packet for {rule} "
                f"(would falsify Lemma {'3' if partner_class == N_CLASS else '4'})"
            )
        mv.packet.exchange_destinations(partner)
        self.exchange_count += 1
        if self.log:
            self.records.append(
                ExchangeRecord(t, rule, i, mv.packet.pid, partner.pid)
            )

    def _find_partner(
        self,
        sim: Simulator,
        exclude: Packet,
        partner_class: str,
        i: int,
        scheduled_target: dict[int, tuple[int, int]],
    ) -> Packet | None:
        """Eligible partner: class (partner_class, i), inside the (i-1)-box,
        not scheduled to enter the guarded column/row.  Prefers packets not
        scheduled anywhere (fewer cascades); ties break on pid."""
        geo = self.geometry
        guard_coord = geo.n_column(i)  # == geo.e_row(i)
        best: Packet | None = None
        best_rank: tuple[int, int] | None = None
        for p in sim.iter_packets():
            if p.pid == exclude.pid:
                continue
            if geo.classify(p.dest) != (partner_class, i):
                continue
            if not geo.in_box(p.pos, i - 1):
                continue
            target = scheduled_target.get(p.pid)
            if target is not None:
                axis = 0 if partner_class == N_CLASS else 1
                if target[axis] == guard_coord:
                    continue  # scheduled to enter the guarded column/row
            rank = (0 if target is None else 1, p.pid)
            if best_rank is None or rank < best_rank:
                best = p
                best_rank = rank
        return best
