"""Every closed-form bound stated in the paper, as checkable functions.

These are the formulas the experiment harness prints next to measured
values.  Where the paper gives both an exact expression (via the
construction constants) and an asymptotic simplification, we expose both.
"""

from __future__ import annotations

from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    FarthestFirstConstants,
)

# -- Theorems 13/14: the minimal adaptive lower bound -------------------------


def adaptive_lower_bound(n: int, k: int) -> int:
    """The certified step count ``floor(l) * dn`` of Theorem 13."""
    return AdaptiveConstants.choose(n, k).bound_steps


def theorem14_closed_form(n: int, k: int) -> int:
    """Theorem 14, Case 1: ``(n / (12(k+2)^2) - 1) * n/3`` for
    ``n >= 24 (k+2)^2``; Case 2 falls back to the diameter bound."""
    if n >= 24 * (k + 2) ** 2:
        return max(0, (n // (12 * (k + 2) ** 2) - 1) * n // 3)
    return 2 * n - 2


def diameter_bound(n: int) -> int:
    """The trivial ``2n - 2`` bound every permutation router can meet."""
    return 2 * n - 2


# -- Section 5 extensions ------------------------------------------------------


def nonminimal_lower_bound(n: int, k: int, delta: int) -> float:
    """Section 5: algorithms straying at most ``delta`` beyond the minimal
    rectangle need ``Omega(n^2 / ((delta+1)^3 k^2))`` steps.

    Expressed through the Theorem 14 closed form with ``p`` scaled by
    ``(delta + 1)`` (which scales ``l`` down by the same factor and the
    effective constant region by another two factors).
    """
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    return theorem14_closed_form(n, k) / (delta + 1) ** 3


def torus_lower_bound(n: int, k: int) -> int:
    """Section 5: the construction on an ``(n/2) x (n/2)`` submesh."""
    if n % 2 != 0:
        raise ValueError(f"torus bound defined for even n, got {n}")
    return AdaptiveConstants.choose(n // 2, k).bound_steps


def hh_lower_bound_closed_form(n: int, k: int, h: int) -> int:
    """Section 5: ``l dn >= floor(h^2 n / (26 (k+1+h)^2)) * (77/144) h n``."""
    levels = (h * h * n) // (26 * (k + 1 + h) ** 2)
    return levels * (77 * h * n) // 144


def dimension_order_lower_bound(n: int, k: int) -> int:
    """Section 5 dimension-order construction: ``floor(l) * dn``."""
    return DimensionOrderConstants.choose(n, k).bound_steps


def dimension_order_closed_form(n: int, k: int) -> int:
    """Paper: ``floor(3n / (8(k+2))) * (2n/5)``."""
    return (3 * n // (8 * (k + 2))) * (2 * n // 5)


def hh_dimension_order_closed_form(n: int, k: int, h: int) -> int:
    """Paper: ``floor(4hn / (15(k+1+h))) * (2hn/5)``."""
    return (4 * h * n // (15 * (k + 1 + h))) * (2 * h * n // 5)


def farthest_first_lower_bound(n: int, k: int) -> int:
    """Section 5 farthest-first construction: ``floor(l) * dn``."""
    return FarthestFirstConstants.choose(n, k).bound_steps


def farthest_first_closed_form(n: int, k: int) -> int:
    """Paper: ``floor(2n / (9(k+1))) * (2n/5)``."""
    return (2 * n // (9 * (k + 1))) * (2 * n // 5)


# -- Theorem 15: the dimension-order upper bound --------------------------------


def theorem15_upper_bound(n: int, k: int, constant: int = 8) -> int:
    """``O(n^2/k + n)``: the number of turning intervals per row is at most
    ``n/k``, each interval plus its aftermath costs ``O(n)``; the default
    multiplicative constant 8 majorizes the proof's 1 + 3 + 2 phases plus
    slack."""
    return constant * (n * n // k + n)


# -- Section 6: the O(n) minimal adaptive algorithm ---------------------------------


def section6_march_bound(q: int, d: int) -> int:
    """Lemma 29: the March takes at most ``q d - 1`` steps."""
    return q * d - 1


def section6_sort_smooth_bound(q: int, d: int) -> int:
    """Lemma 30: Sort and Smooth takes at most ``2((d-1) + q d)`` steps."""
    return 2 * ((d - 1) + q * d)


def section6_balancing_bound(h: int) -> int:
    """Lemma 31: Horizontal Balancing takes at most ``3h - 4`` steps on an
    ``h x h`` tile."""
    return 3 * h - 4


def section6_base_case_bound() -> int:
    """Lemma 32: the dimension-order base case takes at most 14 steps."""
    return 14


def section6_queue_bound(q: int = 408) -> int:
    """Lemma 28 / Theorem 34: at most ``2q + 18`` packets per node
    (834 with q = 408; 222 with the improved q = 102 after iteration 0)."""
    return 2 * q + 18


def section6_time_bound(n: int) -> int:
    """Theorem 34: the full algorithm (all four direction classes) delivers
    every permutation within ``972 n`` steps."""
    return 972 * n


def section6_improved_time_bound(n: int) -> int:
    """The improvement noted after Theorem 34 (q = 102 for iterations
    j >= 1): ``564 n`` steps."""
    return 564 * n
