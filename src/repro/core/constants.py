"""Construction constants (Section 4.3 and the Section 5 analyses).

The lower-bound constructions are parameterized by two constants ``c`` and
``d`` with ``cn`` and ``dn`` integers.  Section 4.3 chooses the largest
``c <= 1/(2(k+2))`` and ``d <= 2/5`` with integral products, and proves the
three feasibility constraints hold once ``n >= 24 (k+2)^2``.  We compute
everything in exact rational arithmetic and *verify* the constraints rather
than assume them, reporting precisely why a given ``(n, k)`` is infeasible.

``k`` here is the number of packets a node can hold.  For the central-queue
model that is the queue capacity; for the four-incoming-queue model it is
``4k`` (Section 5, "Other Queue Types").
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction


class InfeasibleConstructionError(ValueError):
    """The (n, k) pair violates a feasibility constraint of the construction."""


@dataclass(frozen=True)
class AdaptiveConstants:
    """Constants for the Sections 3-4 construction (minimal adaptive bound).

    Attributes:
        n: Mesh side length.
        k: Packets a node can hold.
        cn: The integer ``c * n`` (side of the 1-box).
        dn: The integer ``d * n`` (steps charged per box level).
        p: Packets per class per level, ``floor((k+1)(cn + c^2 n) + dn)``.
        l_floor: Number of box levels, ``floor(c^2 n^2 / (2p))``.
        bound_steps: The certified lower bound ``l_floor * dn`` (Theorem 13).
    """

    n: int
    k: int
    cn: int
    dn: int
    p: int
    l_floor: int
    bound_steps: int

    @property
    def c(self) -> Fraction:
        return Fraction(self.cn, self.n)

    @property
    def d(self) -> Fraction:
        return Fraction(self.dn, self.n)

    @property
    def l(self) -> Fraction:
        """The exact (unfloored) number of levels, ``c^2 n^2 / (2p)``."""
        return Fraction(self.cn * self.cn, 2 * self.p)

    @property
    def total_construction_packets(self) -> int:
        """Packets placed by the construction: p of each class per level."""
        return 2 * self.p * self.l_floor

    @classmethod
    def choose(cls, n: int, k: int) -> "AdaptiveConstants":
        """Pick constants per Section 4.3 and verify feasibility.

        Raises:
            InfeasibleConstructionError: when ``n`` is too small relative to
                ``k`` for the construction to fit (the paper's asymptotic
                regime needs ``n >= 24 (k+2)^2``; somewhat smaller ``n``
                often still verifies).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        cn = n // (2 * (k + 2))  # largest c <= 1/(2(k+2)) with cn integral
        dn = (2 * n) // 5  # largest d <= 2/5 with dn integral
        if cn < 1:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}: cn = floor(n / (2(k+2))) = 0; need n >= {2 * (k + 2)}"
            )
        if dn < 1:
            raise InfeasibleConstructionError(f"n={n}: dn = floor(2n/5) = 0")

        c = Fraction(cn, n)
        # p = floor((k+1)(cn + c^2 n) + dn), computed exactly.
        p_exact = (k + 1) * (cn + c * c * n) + dn
        p = int(p_exact)  # floor for positive rationals
        l = Fraction(cn * cn, 2 * p)
        l_floor = int(l)

        consts = cls(
            n=n, k=k, cn=cn, dn=dn, p=p, l_floor=l_floor, bound_steps=l_floor * dn
        )
        consts.verify()
        return consts

    def verify(self) -> None:
        """Check the three Section 4.3 constraints (exact arithmetic)."""
        n, k, cn = self.n, self.k, self.cn
        c, l = self.c, self.l
        # Constraint 1: enough distinct destination rows/columns:
        #   p <= (1-c) n - l.
        if self.p + l > (1 - c) * n:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}: constraint 1 fails: p + l = {self.p} + {float(l):.2f} "
                f"> (1-c)n = {float((1 - c) * n):.2f}"
            )
        # Constraint 3: l <= c^2 n (used in the Lemma 3/4 counting).
        if l > c * c * n:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}: constraint 3 fails: l = {float(l):.2f} "
                f"> c^2 n = {float(c * c * n):.2f}"
            )
        if self.l_floor < 1:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}: floor(l) = 0 -- construction has no levels"
            )

    @classmethod
    def minimum_feasible_n(cls, k: int, limit: int = 100_000) -> int:
        """Smallest n for which the construction is feasible for this k."""
        for n in range(2 * (k + 2), limit):
            try:
                cls.choose(n, k)
                return n
            except InfeasibleConstructionError:
                continue
        raise InfeasibleConstructionError(f"no feasible n <= {limit} for k={k}")


@dataclass(frozen=True)
class DimensionOrderConstants:
    """Constants for the Section 5 dimension-order construction.

    Here ``p = (k+1) cn + dn`` and ``l = (1-c) c n^2 / p``, capped so the
    ``N_i``-columns fit inside the ``cn`` easternmost (destination) columns.
    Bound: ``l_floor * dn = Omega(n^2 / k)``.
    """

    n: int
    k: int
    cn: int
    dn: int
    p: int
    l_floor: int
    bound_steps: int

    @property
    def c(self) -> Fraction:
        return Fraction(self.cn, self.n)

    @property
    def d(self) -> Fraction:
        return Fraction(self.dn, self.n)

    @classmethod
    def choose(cls, n: int, k: int) -> "DimensionOrderConstants":
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        cn = n // (2 * (k + 2))
        dn = (2 * n) // 5
        if cn < 1 or dn < 1:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}: need n >= {2 * (k + 2)} (cn >= 1) and n >= 3 (dn >= 1)"
            )
        p = (k + 1) * cn + dn
        l = Fraction((n - cn) * cn, p)  # (1-c) c n^2 / p, exactly
        # The N_i-columns are the destination columns, of which there are cn;
        # and each level needs p distinct destination rows among the
        # northern (1-c)n rows.
        l_floor = min(int(l), cn)
        if l_floor < 1:
            raise InfeasibleConstructionError(f"n={n}, k={k}: floor(l) = 0")
        if p > n - cn:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}: p = {p} > (1-c)n = {n - cn}: not enough "
                "destination rows per column"
            )
        return cls(n=n, k=k, cn=cn, dn=dn, p=p, l_floor=l_floor, bound_steps=l_floor * dn)


@dataclass(frozen=True)
class FarthestFirstConstants:
    """Constants for the Section 5 farthest-first construction.

    ``p = (2k+1) cn + dn`` and ``l = c n^2 / p``; the ``N_i``-column is the
    ``(n+1-i)``-th column.  Bound: ``l_floor * dn = Omega(n^2 / k)``.
    """

    n: int
    k: int
    cn: int
    dn: int
    p: int
    l_floor: int
    bound_steps: int

    @property
    def c(self) -> Fraction:
        return Fraction(self.cn, self.n)

    @classmethod
    def choose(cls, n: int, k: int) -> "FarthestFirstConstants":
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        cn = n // (4 * (k + 1))  # paper: 1/(5(k+1)) <= c <= 1/(4(k+1))
        dn = (2 * n) // 5
        if cn < 1 or dn < 1:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}: need n >= {4 * (k + 1)}"
            )
        p = (2 * k + 1) * cn + dn
        l = Fraction(cn * n, p)  # c n^2 / p
        # Each level needs p destination rows among the northern (1-c)n rows
        # of its column, and levels must not run past the sources' columns.
        l_floor = min(int(l), n // 2)
        if p > n - cn:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}: p = {p} > (1-c)n = {n - cn}"
            )
        if l_floor < 1:
            raise InfeasibleConstructionError(f"n={n}, k={k}: floor(l) = 0")
        return cls(n=n, k=k, cn=cn, dn=dn, p=p, l_floor=l_floor, bound_steps=l_floor * dn)
