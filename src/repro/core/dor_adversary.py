"""The Section 5 dimension-order construction: Omega(n^2/k).

Geometry (Figure 4, left): the sources are the westernmost ``(1-c)n`` nodes
of the ``cn`` southernmost rows; every source sends one packet to the
northern ``(1-c)n`` nodes of the ``cn`` easternmost columns.  The
``N_i``-column is the ``i``-th destination column (west to east), and the
``i``-box is everything west of and including it within the southern band.

Because the victim routes dimension-order (row first, then column), a
packet crosses the destination columns in increasing level order before
turning north in its own column.  The single exchange rule

    for i >= 1, j > i: an N_j-packet scheduled to enter the N_i-column
    during steps 1..i*dn is exchanged with an N_i-packet in the (i-1)-box
    not scheduled to enter the N_i-column

pens every destination class behind its column: at most one packet per
step escapes the ``i``-box (through the top of the ``N_i``-column) during
its ``dn``-step window, certifying ``floor(l) * dn = Omega(n^2/k)`` steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.adversary import ExchangeRecord
from repro.core.constants import DimensionOrderConstants
from repro.mesh.errors import AdversaryError
from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import ScheduledMove, Simulator
from repro.mesh.topology import Mesh


@dataclass(frozen=True)
class DorGeometry:
    """Geometry of the dimension-order construction (0-indexed)."""

    n: int
    cn: int
    levels: int

    def column(self, i: int) -> int:
        """0-indexed x of the N_i-column; i = 0 gives the 0-box east edge."""
        return self.n - self.cn - 1 + i

    def classify(self, dest: tuple[int, int]) -> int | None:
        """Destination class: the level of the destination column."""
        level = dest[0] - (self.n - self.cn) + 1
        if 1 <= level <= self.cn and dest[1] >= self.cn:
            return level
        return None

    def in_box(self, node: tuple[int, int], i: int) -> bool:
        """The i-box: west of/including the N_i-column, within the band."""
        return node[0] <= self.column(i) and node[1] < self.cn

    def sources(self) -> list[tuple[int, int]]:
        return [
            (x, y) for y in range(self.cn) for x in range(self.n - self.cn)
        ]

    def destination(self, level: int, j: int) -> tuple[int, int]:
        """The j-th destination cell of a column (rows cn..n-1)."""
        return (self.column(level), self.cn + j)


@dataclass
class DimensionOrderAdversary:
    """Interceptor applying the single dimension-order exchange rule."""

    constants: DimensionOrderConstants
    geometry: DorGeometry
    log: bool = False
    exchange_count: int = 0
    records: list[ExchangeRecord] = field(default_factory=list)

    def __call__(self, sim: Simulator, schedule: list[ScheduledMove]) -> None:
        t = sim.time
        if t > self.constants.bound_steps:
            return
        geo, dn = self.geometry, self.constants.dn
        scheduled_target = {mv.packet.pid: mv.target for mv in schedule}

        for _ in range(len(schedule) * (geo.levels + 1) + 16):
            exchanged = False
            for mv in schedule:
                j = geo.classify(mv.packet.dest)
                if j is None:
                    continue
                x, y = mv.target
                i = x - (self.constants.n - self.constants.cn) + 1
                if not (1 <= i <= geo.levels and y < geo.cn and t <= i * dn):
                    continue
                if j <= i:
                    continue
                partner = self._find_partner(sim, mv.packet, i, scheduled_target)
                if partner is None:
                    raise AdversaryError(
                        f"step {t}: no eligible N_{i}-packet (dim-order rule)"
                    )
                mv.packet.exchange_destinations(partner)
                self.exchange_count += 1
                if self.log:
                    self.records.append(
                        ExchangeRecord(t, "DOR", i, mv.packet.pid, partner.pid)
                    )
                exchanged = True
            if not exchanged:
                return
        raise AdversaryError(f"exchange fixpoint not reached at step {t}")

    def _find_partner(
        self,
        sim: Simulator,
        exclude: Packet,
        i: int,
        scheduled_target: dict[int, tuple[int, int]],
    ) -> Packet | None:
        geo = self.geometry
        guard_x = geo.column(i)
        best: Packet | None = None
        best_rank: tuple[int, int] | None = None
        for p in sim.iter_packets():
            if p.pid == exclude.pid or geo.classify(p.dest) != i:
                continue
            if not geo.in_box(p.pos, i - 1):
                continue
            target = scheduled_target.get(p.pid)
            if target is not None and target[0] == guard_x:
                continue
            rank = (0 if target is None else 1, p.pid)
            if best_rank is None or rank < best_rank:
                best, best_rank = p, rank
        return best


class DorLowerBoundConstruction:
    """Run the dimension-order construction against a dimension-order victim."""

    def __init__(
        self,
        n: int,
        algorithm_factory: Callable[[], RoutingAlgorithm],
        *,
        check_invariants: bool = False,
        log_exchanges: bool = False,
    ) -> None:
        self.algorithm_factory = algorithm_factory
        probe = algorithm_factory()
        if not probe.destination_exchangeable:
            raise TypeError(
                f"{probe.name}: this construction needs a destination-"
                "exchangeable victim (use the farthest-first construction "
                "for distance-aware dimension-order routers)"
            )
        if not probe.dimension_ordered or not probe.minimal:
            raise TypeError(
                f"{probe.name}: the Section 5 construction applies only to "
                "minimal dimension-order algorithms"
            )
        self.k = probe.queue_spec.node_capacity
        self.constants = DimensionOrderConstants.choose(n, self.k)
        self.geometry = DorGeometry(
            n=n, cn=self.constants.cn, levels=self.constants.l_floor
        )
        self.check_invariants = check_invariants
        self.log_exchanges = log_exchanges

    def build_packets(self) -> list[Packet]:
        """Every source sends; each destination column receives (1-c)n packets.

        Packet ids are assigned in sorted-source order to match
        :func:`~repro.core.replay.packets_from_permutation`, so construction
        and replay configurations are comparable packet-for-packet.
        """
        geo = self.geometry
        rows_per_column = geo.n - geo.cn
        pairs: dict[tuple[int, int], tuple[int, int]] = {}
        for idx, src in enumerate(geo.sources()):
            level = idx // rows_per_column + 1
            j = idx % rows_per_column
            pairs[src] = geo.destination(level, j)
        return [Packet(pid, src, dst) for pid, (src, dst) in enumerate(sorted(pairs.items()))]

    def run(self):
        from repro.core.construction import ConstructionResult, InvariantViolation

        packets = self.build_packets()
        self._all = {p.pid: p for p in packets}
        adversary = DimensionOrderAdversary(
            self.constants, self.geometry, log=self.log_exchanges
        )
        sim = Simulator(
            Mesh(self.constants.n),
            self.algorithm_factory(),
            packets,
            interceptor=adversary,
        )
        geo, dn = self.geometry, self.constants.dn
        before: dict[int, tuple[int, int]] = {}
        for _ in range(self.constants.bound_steps):
            if self.check_invariants:
                before = {p.pid: p.pos for p in sim.iter_packets()}
            sim.step()
            if self.check_invariants:
                self._check(sim, before)

        return ConstructionResult(
            constants=self.constants,
            permutation=sorted((p.source, p.dest) for p in packets),
            bound_steps=self.constants.bound_steps,
            exchange_count=adversary.exchange_count,
            undelivered_at_bound=sim.in_flight,
            final_configuration=sim.configuration(),
            delivery_times=dict(sim.delivery_times),
            records=list(adversary.records),
            packet_table=sorted((p.pid, p.source, p.dest) for p in packets),
        )

    def _check(self, sim: Simulator, before: dict[int, tuple[int, int]]) -> None:
        from repro.core.construction import InvariantViolation

        geo, dn, t = self.geometry, self.constants.dn, sim.time
        # Confinement: while level i is protected, no class j > i has
        # reached the N_i-column.
        current = {p.pid: p for p in sim.iter_packets()}
        for p in current.values():
            j = geo.classify(p.dest)
            if j is None:
                continue
            for i in range(1, min(j, geo.levels + 1)):
                if t <= i * dn and p.pos[0] >= geo.column(i):
                    raise InvariantViolation(
                        f"t={t}: class-{j} packet {p.pid} at {p.pos} reached "
                        f"the N_{i}-column"
                    )
        # Escape counting: at most one class-i packet leaves the i-box per
        # step during its window; none while a higher level protects it.
        escapes: dict[int, int] = {}
        for pid, pos_before in before.items():
            p = self._all[pid]  # delivered packets rest at their destination
            for i in range(1, geo.levels + 1):
                if not geo.in_box(pos_before, i):
                    continue
                if geo.in_box(p.pos, i):
                    continue
                j = geo.classify(p.dest)
                if j is None or j < i:
                    continue
                if t <= (i - 1) * dn or (j > i and t <= i * dn):
                    raise InvariantViolation(
                        f"t={t}: class-{j} packet {pid} left the {i}-box "
                        "during a protected phase"
                    )
                if t <= i * dn:
                    escapes[i] = escapes.get(i, 0) + 1
                    if escapes[i] > 1:
                        raise InvariantViolation(
                            f"t={t}: two class-{i} packets left the {i}-box"
                        )
