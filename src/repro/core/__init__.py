"""The paper's primary contribution: constructive lower bounds.

- :mod:`repro.core.constants` -- the Section 4.3 / Section 5 constants,
  computed exactly and feasibility-checked.
- :mod:`repro.core.geometry` -- i-boxes, N_i-columns/E_i-rows, packet
  classification.
- :mod:`repro.core.placement` -- the initial arrangement (Section 3 step 1).
- :mod:`repro.core.adversary` -- exchange rules EX1-EX4 as an interceptor.
- :mod:`repro.core.construction` -- running the construction, with optional
  per-step verification of Lemmas 1-2 and 5-8.
- :mod:`repro.core.replay` -- Lemma 12 / Theorem 13: replaying the
  constructed permutation with no exchanges.
- :mod:`repro.core.dor_adversary` -- the Section 5 dimension-order
  construction (Omega(n^2/k)).
- :mod:`repro.core.ff_adversary` -- the Section 5 farthest-first
  construction (Omega(n^2/k) without destination-exchangeability).
- :mod:`repro.core.bounds` -- every closed-form bound in the paper.
"""

from repro.core.adversary import AdaptiveAdversary, ExchangeRecord
from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    FarthestFirstConstants,
    InfeasibleConstructionError,
)
from repro.core.construction import (
    AdaptiveLowerBoundConstruction,
    ConstructionResult,
    InvariantViolation,
)
from repro.core.geometry import E_CLASS, N_CLASS, BoxGeometry
from repro.core.placement import build_construction_packets
from repro.core.dor_adversary import (
    DimensionOrderAdversary,
    DorGeometry,
    DorLowerBoundConstruction,
)
from repro.core.extensions import (
    HhConstants,
    HhLowerBoundConstruction,
    TorusLowerBoundConstruction,
)
from repro.core.ff_adversary import (
    FarthestFirstAdversary,
    FfGeometry,
    FfLowerBoundConstruction,
)
from repro.core.replay import (
    ReplayReport,
    packets_for_replay,
    packets_from_permutation,
    packets_from_table,
    replay_constructed_permutation,
)
from repro.core import bounds

__all__ = [
    "AdaptiveAdversary",
    "ExchangeRecord",
    "AdaptiveConstants",
    "DimensionOrderConstants",
    "FarthestFirstConstants",
    "InfeasibleConstructionError",
    "AdaptiveLowerBoundConstruction",
    "ConstructionResult",
    "InvariantViolation",
    "BoxGeometry",
    "N_CLASS",
    "E_CLASS",
    "build_construction_packets",
    "ReplayReport",
    "packets_from_permutation",
    "replay_constructed_permutation",
]
