"""Initial packet placement for the Sections 3-4 construction (step 1).

Places ``p`` ``N_i``- and ``p`` ``E_i``-packets for each level
``1 <= i <= floor(l)`` inside the 1-box (the ``cn x cn`` southwest submesh)
such that:

- only ``N_1``-packets occupy the ``N_1``-column at or south of the
  ``E_1``-row,
- only ``E_1``-packets occupy the ``E_1``-row west of the ``N_1``-column,
- at most one packet per node (so any queue capacity ``k >= 1`` suffices).

Destinations are the unique family cells of
:meth:`~repro.core.geometry.BoxGeometry.n_destination` /
:meth:`~repro.core.geometry.BoxGeometry.e_destination`.  Optionally the
instance is completed to a full permutation with classless filler packets
(step 2).
"""

from __future__ import annotations

from repro.core.constants import AdaptiveConstants
from repro.core.geometry import E_CLASS, N_CLASS, BoxGeometry
from repro.mesh.packet import Packet


def build_construction_packets(
    consts: AdaptiveConstants,
    geometry: BoxGeometry | None = None,
    fill: str = "none",
) -> list[Packet]:
    """Build the initial routing instance of the construction.

    Args:
        consts: Construction constants for (n, k).
        geometry: Box geometry (derived from ``consts`` when omitted).
        fill: ``"none"`` for just the construction's partial permutation,
            ``"full"`` to complete it to a full permutation with filler
            packets (paper step 2 allows any such completion).

    Returns:
        Packets with one source per node used, unique destinations; a valid
        (partial) permutation.
    """
    if fill not in ("none", "full"):
        raise ValueError(f"fill must be 'none' or 'full', got {fill!r}")
    geo = geometry or BoxGeometry.from_constants(consts)
    cn, p, levels = consts.cn, consts.p, consts.l_floor

    # Destination queues per class/level, consumed in order.
    dest_iters = {
        (N_CLASS, i): [geo.n_destination(i, j) for j in range(p)] for i in range(1, levels + 1)
    }
    dest_iters.update(
        {(E_CLASS, i): [geo.e_destination(i, j) for j in range(p)] for i in range(1, levels + 1)}
    )

    placements: list[tuple[tuple[int, int], tuple[str, int]]] = []

    # The N_1-column inside the 1-box holds only N_1-packets (cn nodes,
    # including the corner, which is at the E_1-row).
    for y in range(cn):
        placements.append(((cn - 1, y), (N_CLASS, 1)))
    # The E_1-row west of the N_1-column holds only E_1-packets.
    for x in range(cn - 1):
        placements.append(((x, cn - 1), (E_CLASS, 1)))

    # Everything else goes into the 0-box, one packet per node.
    remaining: list[tuple[str, int]] = []
    remaining.extend([(N_CLASS, 1)] * (p - cn))
    remaining.extend([(E_CLASS, 1)] * (p - (cn - 1)))
    for i in range(2, levels + 1):
        remaining.extend([(N_CLASS, i)] * p)
        remaining.extend([(E_CLASS, i)] * p)

    zero_box_nodes = [(x, y) for y in range(cn - 1) for x in range(cn - 1)]
    if len(remaining) > len(zero_box_nodes):
        raise ValueError(
            f"placement does not fit: {len(remaining)} packets for "
            f"{len(zero_box_nodes)} 0-box nodes (constants bug)"
        )
    placements.extend(zip(zero_box_nodes, remaining))

    pairs: dict[tuple[int, int], tuple[int, int]] = {}
    for node, key in placements:
        pairs[node] = dest_iters[key].pop(0)
    for key, leftovers in dest_iters.items():
        if leftovers:
            raise ValueError(f"destinations left unassigned for {key} (placement bug)")

    if fill == "full":
        n = consts.n
        all_nodes = [(x, y) for x in range(n) for y in range(n)]
        used_sources = set(pairs)
        used_dests = set(pairs.values())
        free_sources = [v for v in all_nodes if v not in used_sources]
        free_dests = [v for v in all_nodes if v not in used_dests]
        pairs.update(zip(free_sources, free_dests))

    return [Packet(pid, src, dst) for pid, (src, dst) in enumerate(sorted(pairs.items()))]
