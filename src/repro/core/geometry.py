"""i-box geometry and packet classification (Section 2, "Definitions").

The paper numbers columns/rows 1..n; we use 0-indexed coordinates, so the
``N_i``-column (paper: the ``(cn-1+i)``-th column) has 0-indexed x equal to
``cn + i - 2``, and likewise for the ``E_i``-row.  The ``i``-box is the set
of nodes west of and including the ``N_i``-column and south of and
including the ``E_i``-row; the 0-box is the set strictly southwest of both,
which the same formula yields at ``i = 0``.

A packet's class is a function of its *destination* (given that it started
in the ``cn x cn`` submesh): an ``N_i``-packet is destined for the
``N_i``-column strictly north of the ``E_i``-row, an ``E_i``-packet for the
``E_i``-row strictly east of the ``N_i``-column.  Because an exchange swaps
destinations between two construction packets, class labels travel with the
destination, exactly as in the paper's bookkeeping.  Filler packets added
to complete a permutation (Section 3, step 2) start outside the submesh and
are classless.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import AdaptiveConstants

#: Packet class tags.
N_CLASS = "N"
E_CLASS = "E"


@dataclass(frozen=True)
class BoxGeometry:
    """Geometry helper bound to one construction instance.

    Attributes:
        n: Mesh side.
        cn: Side of the 1-box (the cn x cn southwest submesh).
        levels: Number of box levels (``floor(l)``).
        p: Packets per class per level.
        h: Destination multiplicity (1 for permutations; the h-h extension
            packs up to h packets per destination row/column cell).

    All methods take/return 0-indexed coordinates.
    """

    n: int
    cn: int
    levels: int
    p: int
    h: int = 1

    @classmethod
    def from_constants(cls, consts: AdaptiveConstants) -> "BoxGeometry":
        return cls(n=consts.n, cn=consts.cn, levels=consts.l_floor, p=consts.p)

    @property
    def rows_per_class(self) -> int:
        """Distinct destination cells a class occupies: ceil(p / h)."""
        return -(-self.p // self.h)

    # -- landmark coordinates ---------------------------------------------

    def n_column(self, i: int) -> int:
        """0-indexed x of the N_i-column (paper's (cn-1+i)-th column)."""
        return self.cn + i - 2

    def e_row(self, i: int) -> int:
        """0-indexed y of the E_i-row."""
        return self.cn + i - 2

    def corner(self, i: int) -> tuple[int, int]:
        """The single node of the i-box boundary through which N_i/E_i
        packets may escape (Lemma 2)."""
        return (self.n_column(i), self.e_row(i))

    # -- region predicates ---------------------------------------------------

    def in_box(self, node: tuple[int, int], i: int) -> bool:
        """Node lies in the i-box (i = 0 gives the 0-box)."""
        return node[0] <= self.n_column(i) and node[1] <= self.e_row(i)

    def in_one_box_submesh(self, node: tuple[int, int]) -> bool:
        """Node lies in the cn x cn southwest submesh (equals the 1-box)."""
        return node[0] < self.cn and node[1] < self.cn

    def on_n_column_south(self, node: tuple[int, int], i: int) -> bool:
        """Node is in the N_i-column strictly south of the E_i-row."""
        return node[0] == self.n_column(i) and node[1] < self.e_row(i)

    def on_e_row_west(self, node: tuple[int, int], i: int) -> bool:
        """Node is in the E_i-row strictly west of the N_i-column."""
        return node[1] == self.e_row(i) and node[0] < self.n_column(i)

    # -- destinations and classification ---------------------------------------

    def n_destination(self, i: int, j: int) -> tuple[int, int]:
        """Destination of the j-th (0-based) N_i-packet: rows in the
        N_i-column strictly north of the E_i-row, h packets per row."""
        return (self.n_column(i), self.e_row(i) + 1 + j // self.h)

    def e_destination(self, i: int, j: int) -> tuple[int, int]:
        """Destination of the j-th E_i-packet."""
        return (self.n_column(i) + 1 + j // self.h, self.e_row(i))

    def classify(self, dest: tuple[int, int]) -> tuple[str, int] | None:
        """Class of a construction packet from its destination.

        Returns ``(N_CLASS, i)`` or ``(E_CLASS, i)`` when ``dest`` is one of
        the construction's family destinations (level ``1 <= i <= levels``,
        index ``0 <= j < p``), else None.  Filler destinations never match
        because the families occupy their cells exclusively.
        """
        x, y = dest
        i = x - self.cn + 2  # level if dest sits on an N_i-column
        if 1 <= i <= self.levels:
            j = y - self.e_row(i) - 1
            if 0 <= j < self.rows_per_class:
                return (N_CLASS, i)
        i = y - self.cn + 2
        if 1 <= i <= self.levels:
            j = x - self.n_column(i) - 1
            if 0 <= j < self.rows_per_class:
                return (E_CLASS, i)
        return None
