"""Section 5 extensions of the lower bound: the torus and h-h routing.

**Torus.**  "The construction is simply applied to a contiguous
``(n/2) x (n/2)`` submesh of the torus."  Every displacement inside that
submesh is strictly shorter than half the circumference, so minimal paths
never wrap and profitable directions match the mesh -- the whole Sections
3-4 machinery runs unchanged, yielding the same ``Omega(n^2/k^2)`` (in the
submesh side ``m = n/2``).

**h-h routing.**  Each 1-box node starts with ``h`` packets; ``p`` is
unchanged but ``l = h c^2 n^2 / (2p)``, giving
``Omega(h^3 n^2 / (k+h)^2)``.  The static variant requires ``h <= k`` (the
paper notes ``h > k`` forces the dynamic setting).  The exchange rules and
all lemmas are untouched: :class:`~repro.core.adversary.AdaptiveAdversary`
is reused as-is.

**Nonminimal algorithms.**  For destination-exchangeable algorithms whose
packets stray at most ``delta`` nodes beyond their source-destination
rectangle, Section 5 scales ``p`` by ``(delta + 1)`` and obtains
``Omega(n^2 / ((delta+1)^3 k^2))``; :func:`nonminimal_bound_steps` exposes
that closed form (see :mod:`repro.core.bounds`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable

from repro.core.adversary import AdaptiveAdversary
from repro.core.constants import InfeasibleConstructionError
from repro.core.construction import (
    AdaptiveLowerBoundConstruction,
    ConstructionResult,
    _InvariantChecker,
)
from repro.core.geometry import E_CLASS, N_CLASS, BoxGeometry
from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import Simulator
from repro.mesh.topology import Torus


class TorusLowerBoundConstruction(AdaptiveLowerBoundConstruction):
    """The Sections 3-4 construction embedded in an ``n x n`` torus.

    Constants are chosen for the ``(n//2) x (n//2)`` submesh at the origin;
    the simulation runs on the full torus.  ``n`` must be even.
    """

    def __init__(
        self,
        n: int,
        algorithm_factory: Callable[[], RoutingAlgorithm],
        **kwargs,
    ) -> None:
        if n % 2 != 0:
            raise ValueError(f"torus construction needs even n, got {n}")
        super().__init__(n // 2, algorithm_factory, **kwargs)
        # Everything geometric was sized for the m x m submesh; only the
        # network is the full torus.
        self.torus_n = n
        self.topology = Torus(n)


@dataclass(frozen=True)
class HhConstants:
    """Constants for the h-h extension.

    Mirrors :class:`~repro.core.constants.AdaptiveConstants` with
    ``l = floor(h c^2 n^2 / (2p))``.  The duck-typed fields used by the
    adversary and replay (``n``, ``dn``, ``bound_steps``) are identical.
    """

    n: int
    k: int
    h: int
    cn: int
    dn: int
    p: int
    l_floor: int
    bound_steps: int

    @property
    def c(self) -> Fraction:
        return Fraction(self.cn, self.n)

    @property
    def l(self) -> Fraction:
        return Fraction(self.h * self.cn * self.cn, 2 * self.p)

    @property
    def total_construction_packets(self) -> int:
        return 2 * self.p * self.l_floor

    @classmethod
    def choose(cls, n: int, k: int, h: int) -> "HhConstants":
        if h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        if k < h:
            raise InfeasibleConstructionError(
                f"static h-h needs h <= k (paper: h > k requires the dynamic "
                f"setting); got h={h}, k={k}"
            )
        # Paper: c <= h/(3(k+1+h)); largest integral cn.
        cn = (n * h) // (3 * (k + 1 + h))
        dn = (2 * n) // 5  # d <= 2/5 remains safely within d <= 5h/9
        if cn < 1 or dn < 1:
            raise InfeasibleConstructionError(f"n={n}, k={k}, h={h}: cn or dn is 0")
        c = Fraction(cn, n)
        p = int((k + 1) * (cn + c * c * n) + dn)
        l = Fraction(h * cn * cn, 2 * p)
        l_floor = int(l)
        consts = cls(
            n=n, k=k, h=h, cn=cn, dn=dn, p=p, l_floor=l_floor,
            bound_steps=l_floor * dn,
        )
        # Constraint: p <= h((1-c)n - l) -- enough destination rows at
        # multiplicity h.
        if consts.p > h * ((1 - c) * n - l):
            raise InfeasibleConstructionError(
                f"n={n}, k={k}, h={h}: destination constraint fails"
            )
        if l > c * c * n * h:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}, h={h}: l exceeds h c^2 n"
            )
        if l_floor < 1:
            raise InfeasibleConstructionError(
                f"n={n}, k={k}, h={h}: floor(l) = 0"
            )
        return consts


class HhLowerBoundConstruction:
    """The h-h lower bound construction (static variant, h <= k)."""

    def __init__(
        self,
        n: int,
        h: int,
        algorithm_factory: Callable[[], RoutingAlgorithm],
        *,
        check_invariants: bool = False,
    ) -> None:
        self.algorithm_factory = algorithm_factory
        probe = algorithm_factory()
        if not probe.destination_exchangeable or not probe.minimal:
            raise TypeError(
                f"{probe.name}: need a destination-exchangeable minimal victim"
            )
        self.k = probe.queue_spec.node_capacity
        self.h = h
        self.constants = HhConstants.choose(n, self.k, h)
        self.geometry = BoxGeometry(
            n=n, cn=self.constants.cn, levels=self.constants.l_floor,
            p=self.constants.p, h=h,
        )
        self.check_invariants = check_invariants
        from repro.mesh.topology import Mesh

        self.topology = Mesh(n)

    def build_packets(self) -> list[Packet]:
        """Place h packets per 1-box node, column/row exclusivity preserved."""
        consts, geo = self.constants, self.geometry
        cn, p, levels, h = consts.cn, consts.p, consts.l_floor, self.h

        labels: list[tuple[str, int]] = []
        # Column/row exclusive cells first (h slots each).
        column_cells = [(cn - 1, y) for y in range(cn)]
        row_cells = [(x, cn - 1) for x in range(cn - 1)]
        zero_box = [(x, y) for y in range(cn - 1) for x in range(cn - 1)]

        remaining = {
            (N_CLASS, i): p for i in range(1, levels + 1)
        }
        remaining.update({(E_CLASS, i): p for i in range(1, levels + 1)})

        placements: list[tuple[tuple[int, int], tuple[str, int]]] = []

        def take(cells, key):
            for cell in cells:
                for _ in range(h):
                    if remaining[key] == 0:
                        return
                    remaining[key] -= 1
                    placements.append((cell, key))

        take(column_cells, (N_CLASS, 1))
        take(row_cells, (E_CLASS, 1))

        # Everything left goes into the 0-box, h per node, any order.
        flat: list[tuple[str, int]] = []
        for key in sorted(remaining, key=lambda kv: (kv[1], kv[0])):
            flat.extend([key] * remaining[key])
        slots = [cell for cell in zero_box for _ in range(h)]
        if len(flat) > len(slots):
            raise InfeasibleConstructionError(
                f"h-h placement does not fit: {len(flat)} packets for "
                f"{len(slots)} 0-box slots"
            )
        placements.extend(zip(slots, flat))

        counters: dict[tuple[str, int], int] = {}
        pairs: list[tuple[tuple[int, int], tuple[int, int]]] = []
        for cell, key in placements:
            j = counters.get(key, 0)
            counters[key] = j + 1
            tag, i = key
            dest = (
                geo.n_destination(i, j) if tag == N_CLASS else geo.e_destination(i, j)
            )
            pairs.append((cell, dest))
        pairs.sort()
        return [Packet(pid, src, dst) for pid, (src, dst) in enumerate(pairs)]

    def run(self) -> ConstructionResult:
        packets = self.build_packets()
        adversary = AdaptiveAdversary(self.constants, self.geometry)
        sim = Simulator(
            self.topology, self.algorithm_factory(), packets, interceptor=adversary
        )
        checker = (
            _InvariantChecker(self.constants, self.geometry, packets)
            if self.check_invariants
            else None
        )
        for _ in range(self.constants.bound_steps):
            if checker:
                checker.before_step(sim)
            sim.step()
            if checker:
                checker.after_step(sim)
        return ConstructionResult(
            constants=self.constants,
            permutation=sorted((p.source, p.dest) for p in packets),
            bound_steps=self.constants.bound_steps,
            exchange_count=adversary.exchange_count,
            undelivered_at_bound=sim.in_flight,
            final_configuration=sim.configuration(),
            delivery_times=dict(sim.delivery_times),
            packet_table=sorted((p.pid, p.source, p.dest) for p in packets),
        )
