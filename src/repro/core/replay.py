"""Replaying the constructed permutation (Section 4.2, Lemma 12 / Theorem 13).

The constructed permutation is an ordinary routing instance.  Running the
same algorithm on it *without any exchanges* must reproduce the
construction's configuration exactly at step ``floor(l) * dn`` (Lemma 12:
all pending exchanges have been telescoped into the initial destinations).
Consequently at least one packet is still undelivered at that step
(Theorem 13).  This module performs that replay and verifies both claims,
optionally continuing to completion to measure the actual routing time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.construction import ConstructionResult
from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import Simulator
from repro.mesh.topology import Mesh


@dataclass
class ReplayReport:
    """Outcome of replaying a constructed permutation.

    Attributes:
        bound_steps: The certified lower bound (``floor(l) * dn``).
        undelivered_at_bound: Packets still in flight at the bound
            (Theorem 13 requires >= 1).
        configuration_matches: Lemma 12 -- the replay configuration at the
            bound equals the construction's final configuration.
        delivery_times_match: Deliveries during the first ``bound_steps``
            steps agree step-for-step with the construction run.
        completed: Whether the replay delivered everything within
            ``max_steps`` (None if ``run_to_completion`` was off).
        total_steps: Steps to deliver everything (valid when completed).
        max_queue_len: Largest queue occupancy seen in the replay.
    """

    bound_steps: int
    undelivered_at_bound: int
    configuration_matches: bool
    delivery_times_match: bool
    completed: bool | None
    total_steps: int | None
    max_queue_len: int


def packets_from_permutation(
    permutation: list[tuple[tuple[int, int], tuple[int, int]]]
) -> list[Packet]:
    """Fresh packets for a constructed permutation's (source, dest) pairs.

    Uses the same pid assignment as the construction's placement (sorted by
    source), so configurations are comparable packet-for-packet.  For
    instances with several packets per node, prefer
    :func:`packets_from_table`, which preserves exact packet identity.
    """
    return [Packet(pid, src, dst) for pid, (src, dst) in enumerate(sorted(permutation))]


def packets_from_table(
    table: list[tuple[int, tuple[int, int], tuple[int, int]]]
) -> list[Packet]:
    """Fresh packets from a construction's (pid, source, dest) table."""
    return [Packet(pid, src, dst) for pid, src, dst in sorted(table)]


def packets_for_replay(result: ConstructionResult) -> list[Packet]:
    """The replay instance, preserving packet identity when available."""
    if result.packet_table:
        return packets_from_table(result.packet_table)
    return packets_from_permutation(result.permutation)


def replay_constructed_permutation(
    result: ConstructionResult,
    algorithm_factory: Callable[[], RoutingAlgorithm],
    *,
    run_to_completion: bool = False,
    max_steps: int = 1_000_000,
    topology=None,
) -> ReplayReport:
    """Run the algorithm on the constructed permutation, no adversary.

    Args:
        result: Output of :class:`~repro.core.construction.
            AdaptiveLowerBoundConstruction` (or a compatible construction).
        algorithm_factory: Must produce the same algorithm configuration
            used during the construction.
        run_to_completion: Keep stepping after the bound to measure the
            full routing time (bounded by ``max_steps``).
        topology: The network the construction ran on.  Defaults to the
            ``n x n`` mesh; pass the torus for the torus extension.
    """
    if topology is None:
        topology = Mesh(result.constants.n)
    sim = Simulator(topology, algorithm_factory(), packets_for_replay(result))
    sim.run_steps(result.bound_steps)

    undelivered_at_bound = sim.in_flight
    configuration_matches = sim.configuration() == result.final_configuration
    delivery_times_match = sim.delivery_times == result.delivery_times

    completed: bool | None = None
    total_steps: int | None = None
    if run_to_completion:
        run = sim.run(max_steps=max_steps)
        completed = run.completed
        total_steps = run.steps if run.completed else None

    return ReplayReport(
        bound_steps=result.bound_steps,
        undelivered_at_bound=undelivered_at_bound,
        configuration_matches=configuration_matches,
        delivery_times_match=delivery_times_match,
        completed=completed,
        total_steps=total_steps,
        max_queue_len=sim.max_queue_len,
    )
