"""Running the Sections 3-4 construction against a routing algorithm.

Executes the algorithm with the :class:`~repro.core.adversary.
AdaptiveAdversary` installed for ``floor(l) * dn`` steps, optionally
verifying Lemmas 1-2 and 5-8 after every step, and extracts the
*constructed permutation*: the packets' source/destination pairs after all
exchanges.  Corollary 9 guarantees at least one packet is still undelivered
when the horizon is reached -- in fact at least ``2 * (p - dn + 1)`` are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.adversary import AdaptiveAdversary, ExchangeRecord
from repro.core.constants import AdaptiveConstants
from repro.core.geometry import E_CLASS, N_CLASS, BoxGeometry
from repro.core.placement import build_construction_packets
from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import Simulator
from repro.mesh.topology import Mesh, Topology


class InvariantViolation(AssertionError):
    """A construction lemma failed during the run (model or code bug)."""


@dataclass
class ConstructionResult:
    """Everything the construction run produced.

    Attributes:
        constants: The (n, k) constants used.
        permutation: The constructed permutation as (source, dest) pairs,
            including packets delivered during the construction (paper
            step 4).
        bound_steps: ``floor(l) * dn`` -- the certified lower bound on the
            time any run of the algorithm needs on this permutation.
        exchange_count: Number of destination exchanges performed.
        undelivered_at_bound: Packets still in the network at the horizon
            (Corollary 9 demands >= 1).
        final_configuration: Network configuration snapshot at the horizon,
            for the Lemma 12 replay-equality check.
        delivery_times: pid -> delivery step for packets delivered during
            the construction.
        records: Exchange audit log (when logging was enabled).
    """

    constants: AdaptiveConstants
    permutation: list[tuple[tuple[int, int], tuple[int, int]]]
    bound_steps: int
    exchange_count: int
    undelivered_at_bound: int
    final_configuration: tuple
    delivery_times: dict[int, int]
    records: list[ExchangeRecord] = field(default_factory=list, repr=False)
    #: (pid, source, dest) triples preserving packet identity.  With
    #: multiple packets per node (h-h), replaying from bare (source, dest)
    #: pairs would reorder co-located packets; pids pin the initial queue
    #: order so Lemma 12's configuration equality is exact.
    packet_table: list[tuple[int, tuple[int, int], tuple[int, int]]] = field(
        default_factory=list, repr=False
    )


class AdaptiveLowerBoundConstruction:
    """The constructive lower bound for one algorithm at one (n, k).

    Args:
        n: Mesh side.
        algorithm_factory: Zero-argument callable producing a *fresh*
            instance of the destination-exchangeable minimal algorithm
            under attack.  (Fresh instances keep construction and replay
            runs independent.)
        fill: ``"none"`` or ``"full"`` (Section 3 step 2).
        check_invariants: Verify Lemmas 1-2 and 5-8 after every step
            (slower; invaluable in tests).
        log_exchanges: Record an audit trail of every exchange.
    """

    def __init__(
        self,
        n: int,
        algorithm_factory: Callable[[], RoutingAlgorithm],
        *,
        fill: str = "none",
        check_invariants: bool = False,
        log_exchanges: bool = False,
    ) -> None:
        self.algorithm_factory = algorithm_factory
        probe = algorithm_factory()
        if not probe.destination_exchangeable:
            raise TypeError(
                f"{probe.name}: the Sections 3-4 construction applies only to "
                "destination-exchangeable algorithms"
            )
        if not probe.minimal:
            raise TypeError(
                f"{probe.name}: the Sections 3-4 construction applies only to "
                "minimal algorithms"
            )
        # k in the analysis is the number of packets a node can hold: the
        # queue capacity for the central model, 4k for incoming queues
        # (Section 5, "Other Queue Types").
        self.k = probe.queue_spec.node_capacity
        self.constants = AdaptiveConstants.choose(n, self.k)
        self.geometry = BoxGeometry.from_constants(self.constants)
        self.fill = fill
        self.check_invariants = check_invariants
        self.log_exchanges = log_exchanges
        self.topology: Topology = Mesh(n)

    def build_packets(self) -> list[Packet]:
        return build_construction_packets(self.constants, self.geometry, self.fill)

    def run(self) -> ConstructionResult:
        packets = self.build_packets()
        adversary = AdaptiveAdversary(
            self.constants, self.geometry, log=self.log_exchanges
        )
        sim = Simulator(
            self.topology, self.algorithm_factory(), packets, interceptor=adversary
        )
        checker = (
            _InvariantChecker(self.constants, self.geometry, packets)
            if self.check_invariants
            else None
        )
        for _ in range(self.constants.bound_steps):
            if checker:
                checker.before_step(sim)
            sim.step()
            if checker:
                checker.after_step(sim)

        permutation = sorted((p.source, p.dest) for p in packets)
        return ConstructionResult(
            constants=self.constants,
            permutation=permutation,
            bound_steps=self.constants.bound_steps,
            exchange_count=adversary.exchange_count,
            undelivered_at_bound=sim.in_flight,
            final_configuration=sim.configuration(),
            delivery_times=dict(sim.delivery_times),
            records=list(adversary.records),
            packet_table=sorted((p.pid, p.source, p.dest) for p in packets),
        )


class _InvariantChecker:
    """Verifies Lemmas 1-2 and 5-8 after every construction step."""

    def __init__(
        self, consts: AdaptiveConstants, geo: BoxGeometry, packets: list[Packet]
    ) -> None:
        self.consts = consts
        self.geo = geo
        self.all_packets = {p.pid: p for p in packets}
        self._before: dict[int, tuple[int, int]] = {}

    def before_step(self, sim: Simulator) -> None:
        self._before = {p.pid: p.pos for p in sim.iter_packets()}

    def after_step(self, sim: Simulator) -> None:
        geo, dn, levels = self.geo, self.consts.dn, self.geo.levels
        t = sim.time
        current = {p.pid: p for p in sim.iter_packets()}

        # Lemmas 7 and 8: forbidden regions for N_i / E_i packets.
        for p in current.values():
            cls = geo.classify(p.dest)
            if cls is None:
                continue
            tag, i = cls
            if t <= i * dn:
                x, y = p.pos
                if tag == N_CLASS and y >= geo.e_row(i) and x < geo.n_column(i):
                    raise InvariantViolation(
                        f"Lemma 7 violated at t={t}: N_{i}-packet {p.pid} at {p.pos}"
                    )
                if tag == E_CLASS and x >= geo.n_column(i) and y < geo.e_row(i):
                    raise InvariantViolation(
                        f"Lemma 8 violated at t={t}: E_{i}-packet {p.pid} at {p.pos}"
                    )
            # Lemmas 5 and 6: class >= i confined to the (i-2)-box while
            # t <= (i-1) dn (for 1 < i <= level of the packet).
            for box_i in range(2, min(i, levels) + 1):
                if t <= (box_i - 1) * dn and not geo.in_box(p.pos, box_i - 2):
                    raise InvariantViolation(
                        f"Lemma {'5' if tag == N_CLASS else '6'} violated at "
                        f"t={t}: {tag}_{i}-packet {p.pid} at {p.pos} outside "
                        f"the {box_i - 2}-box"
                    )

        # Lemmas 1 and 2: box-escape counting.
        escapes: dict[tuple[str, int], int] = {}
        for pid, pos_before in self._before.items():
            p = self.all_packets[pid]  # delivered packets rest at their dest
            pos_after = p.pos
            for i in range(1, levels + 1):
                if not geo.in_box(pos_before, i):
                    continue
                if geo.in_box(pos_after, i):
                    continue
                cls = geo.classify(p.dest)
                if cls is None:
                    continue  # fillers are unconstrained
                tag, j = cls
                if j < i:
                    continue  # lower classes are unconstrained by box i
                if t <= (i - 1) * dn:
                    raise InvariantViolation(
                        f"Lemma 1 violated at t={t}: {tag}_{j}-packet {pid} "
                        f"left the {i}-box"
                    )
                if t <= i * dn:
                    if j > i:
                        raise InvariantViolation(
                            f"Lemma 1/5 violated at t={t}: {tag}_{j}-packet "
                            f"{pid} left the {i}-box during its protected phase"
                        )
                    escapes[(tag, i)] = escapes.get((tag, i), 0) + 1
                    if escapes[(tag, i)] > 1:
                        raise InvariantViolation(
                            f"Lemma 2 violated at t={t}: two {tag}_{i}-packets "
                            f"left the {i}-box in one step"
                        )
