"""Saving and loading routing instances and construction results.

Adversarial constructions are expensive to regenerate (quadratic
simulations); persisting the constructed permutation lets a hard instance
be built once and reused across benchmark runs, shared, or inspected.
Plain JSON, no pickle: files are diffable and safe to load.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.mesh.packet import Packet

FORMAT_VERSION = 1


def packets_to_json(packets: list[Packet]) -> dict[str, Any]:
    """A JSON-serializable description of a routing instance."""
    return {
        "version": FORMAT_VERSION,
        "packets": [
            {
                "pid": p.pid,
                "source": list(p.source),
                "dest": list(p.dest),
                "injection_time": p.injection_time,
            }
            for p in packets
        ],
    }


def packets_from_json(data: dict[str, Any]) -> list[Packet]:
    """Rebuild packets from :func:`packets_to_json` output."""
    if not isinstance(data, dict):
        raise ValueError(f"malformed instance: expected an object, got {type(data).__name__}")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported instance format: {data.get('version')!r}")
    if "packets" not in data:
        raise ValueError("malformed instance: missing 'packets'")
    try:
        return [
            Packet(
                entry["pid"],
                tuple(entry["source"]),
                tuple(entry["dest"]),
                injection_time=entry.get("injection_time", 0),
            )
            for entry in data["packets"]
        ]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed instance: bad packet entry ({exc})") from exc


def _read_json(path: str | pathlib.Path) -> Any:
    try:
        return json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed JSON in {path}: {exc}") from exc


def save_instance(packets: list[Packet], path: str | pathlib.Path) -> None:
    """Write an instance to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(packets_to_json(packets)))


def load_instance(path: str | pathlib.Path) -> list[Packet]:
    """Read an instance from a JSON file."""
    return packets_from_json(_read_json(path))


def save_construction(result, path: str | pathlib.Path) -> None:
    """Persist the reusable parts of a ConstructionResult.

    Stores the packet identity table (pids pin queue order, see
    ``ConstructionResult.packet_table``) plus the certified bound and the
    construction's bookkeeping.  The configuration snapshot is not stored:
    replays regenerate it, and it is what the Lemma 12 check compares.
    """
    data = {
        "version": FORMAT_VERSION,
        "n": result.constants.n,
        "k": result.constants.k,
        "bound_steps": result.bound_steps,
        "exchange_count": result.exchange_count,
        "undelivered_at_bound": result.undelivered_at_bound,
        "packet_table": [
            [pid, list(src), list(dst)] for pid, src, dst in result.packet_table
        ],
    }
    pathlib.Path(path).write_text(json.dumps(data))


def load_construction_instance(path: str | pathlib.Path) -> tuple[dict[str, Any], list[Packet]]:
    """Load a saved construction: (metadata, replayable packets)."""
    data = _read_json(path)
    if not isinstance(data, dict):
        raise ValueError(
            f"malformed construction: expected an object, got {type(data).__name__}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported construction format: {data.get('version')!r}")
    try:
        packets = [
            Packet(pid, tuple(src), tuple(dst))
            for pid, src, dst in sorted(data["packet_table"])
        ]
        meta = {key: data[key] for key in (
            "n", "k", "bound_steps", "exchange_count", "undelivered_at_bound"
        )}
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed construction file {path}: {exc}") from exc
    return meta, packets
