"""Permutation routing problems (the paper's benchmark, Section 1).

A (partial) permutation sends at most one packet from each node and at most
one packet to each node.  Generators return fresh :class:`Packet` lists;
all randomness flows through an explicit seed or ``numpy`` generator so
every experiment is reproducible.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.mesh.packet import Packet
from repro.mesh.topology import Topology


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def packets_from_mapping(
    mapping: Mapping[tuple[int, ...], tuple[int, ...]]
    | Iterable[tuple[tuple[int, ...], tuple[int, ...]]],
    *,
    check_permutation: bool = True,
) -> list[Packet]:
    """Build packets from explicit (source -> destination) pairs.

    Args:
        mapping: Source/destination pairs.  Sources are sorted before id
            assignment so packet ids are independent of input ordering.
        check_permutation: Verify at most one packet per source and per
            destination (the partial-permutation condition).
    """
    pairs = sorted(mapping.items()) if isinstance(mapping, Mapping) else sorted(mapping)
    if check_permutation:
        sources = [s for s, _ in pairs]
        dests = [d for _, d in pairs]
        if len(set(sources)) != len(sources):
            raise ValueError("not a partial permutation: duplicate source")
        if len(set(dests)) != len(dests):
            raise ValueError("not a partial permutation: duplicate destination")
    return [Packet(pid, src, dst) for pid, (src, dst) in enumerate(pairs)]


def identity_permutation(topology: Topology) -> list[Packet]:
    """Every node sends to itself (all packets delivered at step 0)."""
    return packets_from_mapping({node: node for node in topology.nodes()})


def random_permutation(
    topology: Topology, seed: int | np.random.Generator | None = None
) -> list[Packet]:
    """A uniformly random full permutation of the nodes."""
    rng = _rng(seed)
    nodes = list(topology.nodes())
    order = rng.permutation(len(nodes))
    return packets_from_mapping({nodes[i]: nodes[order[i]] for i in range(len(nodes))})


def random_partial_permutation(
    topology: Topology,
    fraction: float,
    seed: int | np.random.Generator | None = None,
) -> list[Packet]:
    """A random partial permutation using roughly ``fraction`` of the nodes."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = _rng(seed)
    nodes = list(topology.nodes())
    m = int(round(fraction * len(nodes)))
    sources = rng.choice(len(nodes), size=m, replace=False)
    dests = rng.choice(len(nodes), size=m, replace=False)
    return packets_from_mapping(
        {nodes[s]: nodes[d] for s, d in zip(sources, dests)}
    )


def transpose_permutation(topology: Topology) -> list[Packet]:
    """The coordinate-reversal permutation: (x, y) -> (y, x) in 2D.

    A classic stress pattern for dimension-order routing: all traffic
    crosses the main diagonal.  In d dimensions the node tuple is reversed,
    which requires every side length to be equal.
    """
    if len(set(topology.shape)) != 1:
        raise ValueError("transpose needs equal side lengths on every axis")
    return packets_from_mapping(
        {node: tuple(reversed(node)) for node in topology.nodes()}
    )


def bit_reversal_permutation(topology: Topology) -> list[Packet]:
    """(x, y) -> (rev(x), rev(y)) where rev reverses the coordinate's bits.

    Defined for power-of-two side lengths, per axis, in any dimension.
    """
    shape = topology.shape
    for side in shape:
        if side & (side - 1):
            raise ValueError("bit reversal needs power-of-two dimensions")
    bits = [side.bit_length() - 1 for side in shape]

    def rev(v: int, nbits: int) -> int:
        out = 0
        for _ in range(nbits):
            out = (out << 1) | (v & 1)
            v >>= 1
        return out

    return packets_from_mapping(
        {
            node: tuple(rev(c, b) for c, b in zip(node, bits))
            for node in topology.nodes()
        }
    )


def rotation_permutation(
    topology: Topology, *shifts: int, dx: int | None = None, dy: int | None = None
) -> list[Packet]:
    """Cyclic shift: one shift per axis, each coordinate mod its side.

    The historical 2D spelling ``rotation_permutation(mesh, dx=3, dy=0)``
    is accepted as an alias for positional ``(dx, dy)``.
    """
    if dx is not None or dy is not None:
        if shifts:
            raise ValueError("pass shifts positionally or as dx/dy, not both")
        shifts = (dx or 0, dy or 0)
    shape = topology.shape
    if len(shifts) != len(shape):
        raise ValueError(
            f"rotation needs one shift per axis ({len(shape)}), got {len(shifts)}"
        )
    return packets_from_mapping(
        {
            node: tuple((c + s) % side for c, s, side in zip(node, shifts, shape))
            for node in topology.nodes()
        }
    )
