"""Permutation routing problems (the paper's benchmark, Section 1).

A (partial) permutation sends at most one packet from each node and at most
one packet to each node.  Generators return fresh :class:`Packet` lists;
all randomness flows through an explicit seed or ``numpy`` generator so
every experiment is reproducible.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.mesh.packet import Packet
from repro.mesh.topology import Topology


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def packets_from_mapping(
    mapping: Mapping[tuple[int, int], tuple[int, int]]
    | Iterable[tuple[tuple[int, int], tuple[int, int]]],
    *,
    check_permutation: bool = True,
) -> list[Packet]:
    """Build packets from explicit (source -> destination) pairs.

    Args:
        mapping: Source/destination pairs.  Sources are sorted before id
            assignment so packet ids are independent of input ordering.
        check_permutation: Verify at most one packet per source and per
            destination (the partial-permutation condition).
    """
    pairs = sorted(mapping.items()) if isinstance(mapping, Mapping) else sorted(mapping)
    if check_permutation:
        sources = [s for s, _ in pairs]
        dests = [d for _, d in pairs]
        if len(set(sources)) != len(sources):
            raise ValueError("not a partial permutation: duplicate source")
        if len(set(dests)) != len(dests):
            raise ValueError("not a partial permutation: duplicate destination")
    return [Packet(pid, src, dst) for pid, (src, dst) in enumerate(pairs)]


def identity_permutation(topology: Topology) -> list[Packet]:
    """Every node sends to itself (all packets delivered at step 0)."""
    return packets_from_mapping({node: node for node in topology.nodes()})


def random_permutation(
    topology: Topology, seed: int | np.random.Generator | None = None
) -> list[Packet]:
    """A uniformly random full permutation of the nodes."""
    rng = _rng(seed)
    nodes = list(topology.nodes())
    order = rng.permutation(len(nodes))
    return packets_from_mapping({nodes[i]: nodes[order[i]] for i in range(len(nodes))})


def random_partial_permutation(
    topology: Topology,
    fraction: float,
    seed: int | np.random.Generator | None = None,
) -> list[Packet]:
    """A random partial permutation using roughly ``fraction`` of the nodes."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = _rng(seed)
    nodes = list(topology.nodes())
    m = int(round(fraction * len(nodes)))
    sources = rng.choice(len(nodes), size=m, replace=False)
    dests = rng.choice(len(nodes), size=m, replace=False)
    return packets_from_mapping(
        {nodes[s]: nodes[d] for s, d in zip(sources, dests)}
    )


def transpose_permutation(topology: Topology) -> list[Packet]:
    """The matrix-transpose permutation: (x, y) -> (y, x).

    A classic stress pattern for dimension-order routing: all traffic
    crosses the main diagonal.
    """
    if topology.width != topology.height:
        raise ValueError("transpose needs a square topology")
    return packets_from_mapping({(x, y): (y, x) for x, y in topology.nodes()})


def bit_reversal_permutation(topology: Topology) -> list[Packet]:
    """(x, y) -> (rev(x), rev(y)) where rev reverses the coordinate's bits.

    Defined for power-of-two side lengths.
    """
    w, h = topology.width, topology.height
    if w & (w - 1) or h & (h - 1):
        raise ValueError("bit reversal needs power-of-two dimensions")
    wbits = w.bit_length() - 1
    hbits = h.bit_length() - 1

    def rev(v: int, bits: int) -> int:
        out = 0
        for _ in range(bits):
            out = (out << 1) | (v & 1)
            v >>= 1
        return out

    return packets_from_mapping(
        {(x, y): (rev(x, wbits), rev(y, hbits)) for x, y in topology.nodes()}
    )


def rotation_permutation(topology: Topology, dx: int, dy: int) -> list[Packet]:
    """Cyclic shift: (x, y) -> ((x+dx) mod w, (y+dy) mod h)."""
    w, h = topology.width, topology.height
    return packets_from_mapping(
        {(x, y): ((x + dx) % w, (y + dy) % h) for x, y in topology.nodes()}
    )
