"""h-h routing problems (Section 5).

In an h-h problem each node sends up to ``h`` packets and receives up to
``h`` packets.  The static variant injects everything at step 0 (which
requires ``h <= k`` to fit in the queues); the dynamic variant staggers
injection times, matching the paper's observation that "if h > k this
dynamic setting would be necessary to accommodate the h packets in the k
queue locations of their source node."
"""

from __future__ import annotations

import numpy as np

from repro.mesh.packet import Packet
from repro.mesh.topology import Topology


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_hh_problem(
    topology: Topology,
    h: int,
    seed: int | np.random.Generator | None = None,
) -> list[Packet]:
    """A random h-h problem: ``h`` independent random permutations, stacked.

    Each of the ``h`` rounds is a full permutation, so every node sends
    exactly ``h`` packets and receives exactly ``h``.
    """
    if h < 1:
        raise ValueError(f"h must be >= 1, got {h}")
    rng = _rng(seed)
    nodes = list(topology.nodes())
    packets: list[Packet] = []
    pid = 0
    for _ in range(h):
        order = rng.permutation(len(nodes))
        for i, node in enumerate(nodes):
            packets.append(Packet(pid, node, nodes[order[i]]))
            pid += 1
    return packets


def dynamic_hh_problem(
    topology: Topology,
    h: int,
    spacing: int = 1,
    seed: int | np.random.Generator | None = None,
) -> list[Packet]:
    """An h-h problem whose rounds are injected ``spacing`` steps apart.

    Round ``r`` carries ``injection_time = r * spacing``.  Injection times
    are deterministic functions of the round index, never of destination
    addresses, as the Section 5 dynamic model requires.
    """
    packets = random_hh_problem(topology, h, seed)
    per_round = topology.num_nodes
    for p in packets:
        p.injection_time = (p.pid // per_round) * spacing
    return packets
