"""Routing problem generators.

Static permutations (Section 1's benchmark problem), partial permutations,
h-h problems and dynamic injections (Section 5), and the adversarially
constructed permutations of Sections 3-5 (via :mod:`repro.core`).
"""

from repro.workloads.permutations import (
    bit_reversal_permutation,
    identity_permutation,
    packets_from_mapping,
    random_partial_permutation,
    random_permutation,
    rotation_permutation,
    transpose_permutation,
)
from repro.workloads.hh import dynamic_hh_problem, random_hh_problem
from repro.workloads.average_case import random_destinations
from repro.workloads.dynamic import bernoulli_traffic

__all__ = [
    "bit_reversal_permutation",
    "identity_permutation",
    "packets_from_mapping",
    "random_partial_permutation",
    "random_permutation",
    "rotation_permutation",
    "transpose_permutation",
    "dynamic_hh_problem",
    "random_hh_problem",
    "random_destinations",
    "bernoulli_traffic",
]
