"""Average-case routing problems (Section 1.1).

The paper quotes Leighton's average-case result: with each packet given a
*random destination* (not a permutation), greedy dimension-order routing
delivers everything in ``2n + O(log n)`` steps with high probability and no
queue ever holds more than four packets.  This generator produces that
setting; benchmark E12 reproduces the claim's shape.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.packet import Packet
from repro.mesh.topology import Topology


def random_destinations(
    topology: Topology,
    load: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> list[Packet]:
    """One packet per node (thinned by ``load``), each with an independent
    uniformly random destination.  Destinations may repeat -- this is not a
    permutation, which is exactly the point of the average-case setting."""
    if not 0.0 < load <= 1.0:
        raise ValueError(f"load must be in (0, 1], got {load}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    nodes = list(topology.nodes())
    packets: list[Packet] = []
    pid = 0
    for node in nodes:
        if load < 1.0 and rng.random() >= load:
            continue
        dest = nodes[int(rng.integers(len(nodes)))]
        packets.append(Packet(pid, node, dest))
        pid += 1
    return packets
