"""Dynamic (online) traffic: Bernoulli injection over a time horizon.

Section 5 notes the lower bounds extend to dynamic problems where packets
are injected over time.  This generator produces the standard
network-evaluation workload: at each step, each node independently injects
a packet with probability ``rate``, destined uniformly at random -- the
load-sweep setting used to measure saturation behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.packet import Packet
from repro.mesh.topology import Topology


def bernoulli_traffic(
    topology: Topology,
    rate: float,
    horizon: int,
    seed: int | np.random.Generator | None = None,
) -> list[Packet]:
    """Bernoulli-injected uniform random traffic.

    Args:
        topology: The network.
        rate: Per-node injection probability per step (0 < rate <= 1).
        horizon: Injection stops after this step; the run then drains.
        seed: RNG seed or generator.

    Returns:
        Packets with ``injection_time`` in ``[0, horizon)``.  Expected
        packet count is ``rate * horizon * num_nodes``.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    nodes = list(topology.nodes())
    packets: list[Packet] = []
    pid = 0
    for t in range(horizon):
        draws = rng.random(len(nodes))
        for idx in np.nonzero(draws < rate)[0]:
            src = nodes[int(idx)]
            dst = nodes[int(rng.integers(len(nodes)))]
            packets.append(Packet(pid, src, dst, injection_time=t))
            pid += 1
    return packets
