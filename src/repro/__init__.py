"""repro: a reproduction of Chinn, Leighton & Tompa (SPAA 1994),
"Minimal Adaptive Routing on the Mesh with Bounded Queue Size".

The package implements the paper's machine model (synchronous mesh/torus
with bounded queues), its routing algorithms (dimension order, the
Theorem 15 bounded-queue router, farthest-first, minimal adaptive routers,
and the Section 6 O(n)-time O(1)-queue algorithm), and -- the paper's main
contribution -- the adversarial lower-bound constructions of Sections 3-5,
runnable against any destination-exchangeable algorithm.

Quickstart::

    from repro import Mesh, BoundedDimensionOrderRouter, Simulator
    from repro.workloads import random_permutation

    mesh = Mesh(32)
    packets = random_permutation(mesh, seed=0)
    sim = Simulator(mesh, BoundedDimensionOrderRouter(queue_capacity=2), packets)
    result = sim.run(max_steps=10_000)
    print(result.steps, result.max_queue_len)
"""

from repro.mesh import (
    Direction,
    FullPacketView,
    Mesh,
    MeshND,
    NodeContext,
    Offer,
    Packet,
    PacketView,
    QueueSpec,
    RoutingAlgorithm,
    RunResult,
    Simulator,
    SparsePillarMesh,
    Topology,
    Torus,
    TorusND,
)
from repro.routing import (
    AlternatingAdaptiveRouter,
    BoundedDimensionOrderRouter,
    BoundedExcursionRouter,
    CreditAdaptiveRouter,
    DimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
    HotPotatoRouter,
    RandomizedAdaptiveRouter,
    ShearsortRouter,
)

__version__ = "1.0.0"

__all__ = [
    "Direction",
    "FullPacketView",
    "Mesh",
    "MeshND",
    "SparsePillarMesh",
    "TorusND",
    "NodeContext",
    "Offer",
    "Packet",
    "PacketView",
    "QueueSpec",
    "RoutingAlgorithm",
    "RunResult",
    "Simulator",
    "Topology",
    "Torus",
    "AlternatingAdaptiveRouter",
    "BoundedDimensionOrderRouter",
    "BoundedExcursionRouter",
    "DimensionOrderRouter",
    "FarthestFirstRouter",
    "CreditAdaptiveRouter",
    "GreedyAdaptiveRouter",
    "HotPotatoRouter",
    "RandomizedAdaptiveRouter",
    "ShearsortRouter",
    "__version__",
]
