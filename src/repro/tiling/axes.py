"""Axis adapter: one implementation serves Vertical and Horizontal Phases.

A phase moves packets along its *main* axis (north for the Vertical Phase,
east for the Horizontal Phase) and balances along the *cross* axis.  The
adapter translates between (main, cross) logical coordinates and canonical
(x, y) nodes, and picks the matching strip/tile helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tiling.geometry import Tile
from repro.tiling.state import ClassState


@dataclass(frozen=True)
class Axes:
    """vertical=True: main axis is y (march north, balance east).
    vertical=False: main axis is x (march east, balance north)."""

    vertical: bool

    def main(self, node: tuple[int, int]) -> int:
        return node[1] if self.vertical else node[0]

    def cross(self, node: tuple[int, int]) -> int:
        return node[0] if self.vertical else node[1]

    def node(self, main: int, cross: int) -> tuple[int, int]:
        return (cross, main) if self.vertical else (main, cross)

    def step_main(self, node: tuple[int, int]) -> tuple[int, int]:
        """One hop along the main axis (toward the destination)."""
        x, y = node
        return (x, y + 1) if self.vertical else (x + 1, y)

    def step_cross(self, node: tuple[int, int]) -> tuple[int, int]:
        x, y = node
        return (x + 1, y) if self.vertical else (x, y + 1)

    def strip(self, tile: Tile, node: tuple[int, int]) -> int:
        return tile.strip_of_y(node[1]) if self.vertical else tile.strip_of_x(node[0])

    def strip_bounds(self, tile: Tile, strip: int) -> tuple[int, int]:
        return (
            tile.strip_bounds_y(strip) if self.vertical else tile.strip_bounds_x(strip)
        )

    def tile_cross_range(self, tile: Tile, n: int) -> range:
        """Real cross coordinates of the tile (clipped to the mesh)."""
        lo = tile.x0 if self.vertical else tile.y0
        return range(max(lo, 0), min(lo + tile.side, n))

    def main_to_go(self, state: ClassState, pid: int) -> int:
        return state.north_to_go(pid) if self.vertical else state.east_to_go(pid)

    def cross_to_go(self, state: ClassState, pid: int) -> int:
        return state.east_to_go(pid) if self.vertical else state.north_to_go(pid)
