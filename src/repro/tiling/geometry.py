"""Tiles, tilings (Lemma 19), and strips (Section 6.1) in canonical space.

The engine routes each of the four direction classes in a *canonical*
coordinate system in which every packet moves north/east; tiles and strips
are computed in that space.  Tiles at iteration ``j`` have side
``n / 3^j``; the three tilings of Lemma 19 are displaced by a third of the
tile side in both axes, so any location/destination pair within a third of
a tile of each other in both dimensions shares a tile in at least one
tiling.  Edge tiles are "virtual": strip geometry is computed on the full
(unclipped) square while only real mesh nodes hold packets.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Number of strips a tile is divided into (Section 6.1, step 1).
STRIPS = 27

#: Minimum tile side for the recursive phases; below this the base case runs.
BASE_THRESHOLD = 27


@dataclass(frozen=True)
class Tile:
    """One (possibly virtual) tile: the square [x0, x0+side) x [y0, y0+side).

    ``x0``/``y0`` may be negative or extend past the mesh for edge tiles;
    clipping happens when the engine enumerates real nodes.
    """

    x0: int
    y0: int
    side: int

    @property
    def strip_height(self) -> int:
        return self.side // STRIPS

    def contains(self, node: tuple[int, int]) -> bool:
        return (
            self.x0 <= node[0] < self.x0 + self.side
            and self.y0 <= node[1] < self.y0 + self.side
        )

    def strip_of_y(self, y: int) -> int:
        """1-based strip index (south to north) of a row within the tile."""
        return (y - self.y0) // self.strip_height + 1

    def strip_of_x(self, x: int) -> int:
        """1-based strip index (west to east) of a column within the tile."""
        return (x - self.x0) // self.strip_height + 1

    def strip_bounds_y(self, strip: int) -> tuple[int, int]:
        """[lo, hi] rows (inclusive) of a 1-based horizontal strip."""
        lo = self.y0 + (strip - 1) * self.strip_height
        return lo, lo + self.strip_height - 1

    def strip_bounds_x(self, strip: int) -> tuple[int, int]:
        lo = self.x0 + (strip - 1) * self.strip_height
        return lo, lo + self.strip_height - 1


def strip_of(tile: Tile, node: tuple[int, int], vertical: bool) -> int:
    """Strip index of a node for a vertical (row strips) or horizontal phase."""
    return tile.strip_of_y(node[1]) if vertical else tile.strip_of_x(node[0])


def tilings_for_side(n: int, side: int) -> list[list[Tile]]:
    """The tilings used at tile size ``side`` on an n x n mesh.

    Returns one tiling (a list of tiles covering the mesh) when
    ``side == n`` (the j = 0 special case), else the three tilings of
    Lemma 19, displaced by ``side/3`` in both dimensions.
    """
    if side == n:
        return [[Tile(0, 0, n)]]
    if side % 3 != 0:
        raise ValueError(f"tile side {side} must be divisible by 3")
    shift = side // 3
    tilings = []
    for t in range(3):
        offset = -t * shift
        tiles = []
        for x0 in range(offset, n, side):
            for y0 in range(offset, n, side):
                tiles.append(Tile(x0, y0, side))
        tilings.append(tiles)
    return tilings


def covering_tile_exists(n: int, side: int, a: tuple[int, int], b: tuple[int, int]) -> bool:
    """Lemma 19's guarantee, checkable: nodes within side/3 of each other in
    both dimensions share a tile in at least one tiling."""
    for tiles in tilings_for_side(n, side):
        for tile in tiles:
            if tile.contains(a) and tile.contains(b):
                return True
    return False
