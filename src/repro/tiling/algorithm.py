"""The full Section 6 algorithm: orchestration across classes, iterations,
tilings, and phases (Theorem 34).

Runs the four direction classes (NE, NW, SE, SW) sequentially, each in a
mirrored canonical space where all movement is north/east.  Per iteration
``j`` the tile side shrinks from ``n`` by factors of 3; each iteration runs
the Vertical Phase over every tiling (one tiling at j = 0, else the three
staggered tilings of Lemma 19), then the Horizontal Phase likewise.  Below
tile side 27 the farthest-first dimension-order base case finishes.

Two clocks are kept:

- ``scheduled_steps``: the barrier schedule of the paper, where every node
  waits out each phase's worst-case duration (Lemmas 29-32).  This is the
  O(n) *guarantee* and is what Theorem 34's ``972 n`` bounds.
- ``actual_steps``: synchronous steps in which at least one packet could
  still move -- what an implementation with completion detection would take.

Every lemma bound is enforced at runtime: exceeding a phase budget,
breaking minimality, or entering the base case too far from the
destination raises :class:`~repro.tiling.state.Section6Violation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.mesh.packet import Packet
from repro.tiling.axes import Axes
from repro.tiling.base_case import BASE_CASE_BOUND, run_base_case
from repro.tiling.geometry import BASE_THRESHOLD, Tile, tilings_for_side
from repro.tiling.phases import (
    Q_REFUSAL,
    collect_actives,
    run_balancing,
    run_march,
    run_sort_and_smooth,
)
from repro.tiling.state import ClassState, Occupancy, Section6Violation

#: (name, mirror_x, mirror_y) for the four direction classes.
DIRECTION_CLASSES = (
    ("NE", False, False),
    ("NW", True, False),
    ("SE", False, True),
    ("SW", True, True),
)


@dataclass
class PhaseStats:
    """Instrumentation for one subphase (one tiling, one orientation)."""

    direction: str
    iteration: int
    tiling_index: int
    vertical: bool
    tile_side: int
    active_packets: int
    march_steps: int
    sort_smooth_steps: int
    balancing_steps: int
    scheduled_steps: int

    @property
    def actual_steps(self) -> int:
        return self.march_steps + self.sort_smooth_steps + self.balancing_steps


@dataclass
class Section6Result:
    """Outcome of one Section 6 run."""

    n: int
    total_packets: int
    delivered: int
    completed: bool
    actual_steps: int
    scheduled_steps: int
    paper_time_bound: int  # 972 n (Theorem 34)
    max_node_load: int
    paper_queue_bound: int  # 834 (Lemma 28)
    base_case_steps: dict[str, int] = field(default_factory=dict)
    phases: list[PhaseStats] = field(default_factory=list, repr=False)


class Section6Router:
    """O(n)-time, O(1)-queue minimal adaptive router (Section 6).

    Args:
        n: Mesh side; must be a power of 3 with ``n >= 27``.
        q: The March refusal threshold (Lemma 21's ``q``; 408 in the main
            analysis).
        improved: Use the paper's closing improvement -- ``q = 102`` for
            iterations ``j >= 1``, where active packets are within 9 strips
            of their destinations (time bound 564n, queue bound 222 there).
        record_phases: Keep per-subphase instrumentation.
    """

    def __init__(
        self,
        n: int,
        *,
        q: int = Q_REFUSAL,
        improved: bool = False,
        record_phases: bool = True,
    ) -> None:
        side = n
        while side > BASE_THRESHOLD and side % 3 == 0:
            side //= 3
        if side != BASE_THRESHOLD:
            raise ValueError(
                f"n must be a power of 3 with n >= 27, got {n}"
            )
        self.n = n
        self.q = q
        self.improved = improved
        self.record_phases = record_phases

    def route(self, packets: Sequence[Packet]) -> Section6Result:
        """Route a (partial) permutation; returns timing and queue stats."""
        occupancy = Occupancy()
        live = []
        for p in packets:
            if p.source != p.dest:
                p.pos = p.source
                occupancy.add(p.source)
                live.append(p)

        result = Section6Result(
            n=self.n,
            total_packets=len(list(packets)),
            delivered=len(list(packets)) - len(live),
            completed=False,
            actual_steps=0,
            scheduled_steps=0,
            paper_time_bound=972 * self.n,
            max_node_load=occupancy.max_load,
            paper_queue_bound=2 * Q_REFUSAL + 18,
        )

        by_class: dict[str, list[Packet]] = {name: [] for name, _, _ in DIRECTION_CLASSES}
        for p in live:
            dx = p.dest[0] - p.source[0]
            dy = p.dest[1] - p.source[1]
            if dx >= 0 and dy >= 0:
                by_class["NE"].append(p)
            elif dx < 0 and dy >= 0:
                by_class["NW"].append(p)
            elif dx >= 0:
                by_class["SE"].append(p)
            else:
                by_class["SW"].append(p)

        for name, mx, my in DIRECTION_CLASSES:
            cls_packets = by_class[name]
            state = ClassState(self.n, mx, my, cls_packets, occupancy)
            self._route_class(name, state, result)
            if state.undelivered:
                raise Section6Violation(
                    f"class {name}: {state.undelivered} packets undelivered "
                    "after the base case"
                )
            for p in cls_packets:
                p.pos = p.dest
            result.delivered += len(cls_packets)

        result.completed = True
        result.max_node_load = occupancy.max_load
        return result

    # -- internals ------------------------------------------------------------

    def _route_class(self, name: str, state: ClassState, result: Section6Result) -> None:
        side = self.n
        iteration = 0
        while side >= BASE_THRESHOLD:
            q = self.q
            if self.improved and iteration >= 1:
                q = 17 * (9 - 3)  # packets are within 9 strips (paper, end of S6)
            tilings = tilings_for_side(self.n, side)
            for vertical in (True, False):
                axes = Axes(vertical)
                for t_index, tiles in enumerate(tilings):
                    stats = self._run_subphase(
                        name, state, tiles, axes, iteration, t_index, q
                    )
                    result.actual_steps += stats.actual_steps
                    result.scheduled_steps += stats.scheduled_steps
                    if self.record_phases:
                        result.phases.append(stats)
            side //= 3
            iteration += 1

        steps = run_base_case(state)
        result.base_case_steps[name] = steps
        result.actual_steps += steps
        result.scheduled_steps += BASE_CASE_BOUND

    def _run_subphase(
        self,
        name: str,
        state: ClassState,
        tiles: list[Tile],
        axes: Axes,
        iteration: int,
        t_index: int,
        q: int,
    ) -> PhaseStats:
        d = tiles[0].strip_height
        s = tiles[0].side
        march_max = ss_max = bal_max = 0
        total_actives = 0
        for tile in tiles:
            actives = collect_actives(state, tile, axes)
            if not actives:
                continue
            total_actives += len(actives)
            march = run_march(state, tile, axes, actives, q)
            ss_even = run_sort_and_smooth(state, tile, axes, actives, 0, q)
            ss_odd = run_sort_and_smooth(state, tile, axes, actives, 1, q)
            bal = run_balancing(state, tile, axes, actives)
            march_max = max(march_max, march)
            ss_max = max(ss_max, ss_even + ss_odd)
            bal_max = max(bal_max, bal)
        scheduled = (q * d - 1) + 2 * ((d - 1) + q * d) + max(3 * s - 4, 0)
        return PhaseStats(
            direction=name,
            iteration=iteration,
            tiling_index=t_index,
            vertical=axes.vertical,
            tile_side=s,
            active_packets=total_actives,
            march_steps=march_max,
            sort_smooth_steps=ss_max,
            balancing_steps=bal_max,
            scheduled_steps=scheduled,
        )
