"""The Section 6 base case (Lemma 32).

Once tiles would shrink below 27 nodes, every packet of the class is within
two rows and two columns of its destination (Lemma 18 with d = 1).  A
farthest-first dimension-order sweep then delivers everything in at most 14
steps.  We verify the precondition and the step bound as executable
assertions.
"""

from __future__ import annotations

from repro.tiling.state import ClassState, Section6Violation

#: Lemma 32's bound on the base case duration.
BASE_CASE_BOUND = 14

#: Lemma 18's guarantee entering the base case (d = 1: within 3d - 1 = 2).
BASE_CASE_RADIUS = 2


def run_base_case(state: ClassState) -> int:
    """Deliver all remaining packets of the class; returns steps used."""
    for pid, pos in state.pos.items():
        dest = state.dest[pid]
        if (
            dest[0] - pos[0] > BASE_CASE_RADIUS
            or dest[1] - pos[1] > BASE_CASE_RADIUS
        ):
            raise Section6Violation(
                f"Lemma 18 violated entering the base case: packet {pid} at "
                f"{pos} is more than {BASE_CASE_RADIUS} rows/columns from "
                f"its destination {dest}"
            )
    steps = 0
    while state.pos:
        steps += 1
        if steps > BASE_CASE_BOUND:
            raise Section6Violation(
                f"base case exceeded Lemma 32's bound of {BASE_CASE_BOUND} steps"
            )
        moves: list[tuple[int, tuple[int, int]]] = []
        for node, pids in state.by_node.items():
            east = [p for p in pids if state.east_to_go(p) > 0]
            if east:
                # Farthest-first on the horizontal dimension.
                pid = max(east, key=lambda p: (state.east_to_go(p), -p))
                moves.append((pid, (node[0] + 1, node[1])))
            # Dimension order: only packets done with horizontal movement
            # use the north outlink.
            north = [p for p in pids if state.east_to_go(p) == 0]
            if north:
                pid = max(north, key=lambda p: (state.north_to_go(p), -p))
                moves.append((pid, (node[0], node[1] + 1)))
        if not moves:
            raise Section6Violation(
                f"base case stalled with {len(state.pos)} undelivered packets"
            )
        for pid, nxt in moves:
            state.move(pid, nxt)
    return steps
