"""The Section 6 algorithm: O(n)-time, O(1)-queue minimal adaptive routing.

The first minimal adaptive routing algorithm with both O(n) delivery time
and constant-size queues.  It alternates Vertical and Horizontal Phases over
three staggered tilings whose tiles shrink by 3x per iteration; each phase
runs March, Sort-and-Smooth, and Balancing (the 2-rule), ending with a
farthest-first dimension-order base case once tiles drop below 27 nodes.

The algorithm uses each packet's remaining distances to classify it into
strips, so it is *not* destination-exchangeable -- which is exactly the
paper's point: it shows the lower bound's model restriction cannot be
dropped.

Public entry point: :class:`~repro.tiling.algorithm.Section6Router`.
"""

from repro.tiling.geometry import Tile, tilings_for_side, strip_of
from repro.tiling.algorithm import Section6Router, Section6Result, PhaseStats

__all__ = [
    "Tile",
    "tilings_for_side",
    "strip_of",
    "Section6Router",
    "Section6Result",
    "PhaseStats",
]
