"""The three steps of a Section 6 phase: March, Sort and Smooth, Balancing.

All three run on one tile in canonical coordinates through an
:class:`~repro.tiling.axes.Axes` adapter, so the same code serves Vertical
and Horizontal Phases.  Every executor returns the number of synchronous
steps it used and raises :class:`~repro.tiling.state.Section6Violation`
when a lemma's time bound, the minimality requirement, or the sortedness
invariant of Sort and Smooth fails -- making each paper lemma an executable
assertion.
"""

from __future__ import annotations

from repro.tiling.axes import Axes
from repro.tiling.geometry import STRIPS, Tile
from repro.tiling.state import ClassState, Section6Violation

#: Lemma 21's refusal threshold: q = 17 * (27 - 3).
Q_REFUSAL = 408


def collect_actives(
    state: ClassState, tile: Tile, axes: Axes
) -> dict[int, int]:
    """Active packets of this subphase: pid -> destination strip.

    Active (Section 6.1, step 1): current location and destination both in
    the tile, and the location lies in strips ``1..i-3`` where ``i`` is the
    destination strip.
    """
    actives: dict[int, int] = {}
    for node, pids in state.by_node.items():
        if not tile.contains(node):
            continue
        pos_strip = axes.strip(tile, node)
        for pid in pids:
            dest = state.dest[pid]
            if not tile.contains(dest):
                continue
            dest_strip = axes.strip(tile, dest)
            if pos_strip <= dest_strip - 3:
                actives[pid] = dest_strip
    return actives


def run_march(
    state: ClassState,
    tile: Tile,
    axes: Axes,
    actives: dict[int, int],
    q: int = Q_REFUSAL,
) -> int:
    """Step 2, the March (Lemmas 21 and 29).

    Each active packet moves along the main axis to strip ``i - 3``, as far
    forward within that strip as possible; a strip ``i-3`` node holding
    ``q`` packets destined for strip ``i`` refuses further ones.  Nodes
    prefer forwarding the packet received from behind on the previous step
    (Lemma 29's priority), so moving packets stream without gaps.
    """
    if not actives:
        return 0
    d = tile.strip_height
    # Class census per (node, dest_strip), maintained incrementally.
    census: dict[tuple[tuple[int, int], int], int] = {}
    movers: set[int] = set()
    for pid, dest_strip in actives.items():
        node = state.pos[pid]
        census[(node, dest_strip)] = census.get((node, dest_strip), 0) + 1
        movers.add(pid)
    moved_last: set[int] = set()
    steps = 0
    # Lemma 29: at most q d - 1 steps for the paper's q = 17 (27-3).  For
    # smaller experimental q the lemma's premise fails, so fall back to the
    # generic travel-plus-delay cap.
    bound = max(q * d, 17 * STRIPS * d)

    while movers:
        moves: list[tuple[int, int, tuple[int, int], tuple[int, int]]] = []
        sending_nodes: dict[tuple[int, int], tuple[int, int, int]] = {}
        retired: list[int] = []
        for pid in sorted(movers):
            node = state.pos[pid]
            dest_strip = actives[pid]
            nxt = axes.step_main(node)
            nxt_strip = axes.strip(tile, nxt)
            if nxt_strip > dest_strip - 3:
                retired.append(pid)  # at the forward edge: done for good
                continue
            if nxt_strip == dest_strip - 3:
                if census.get((nxt, dest_strip), 0) >= q:
                    # Stop-strip census never decreases during the March, so
                    # this refusal is permanent: the packet has settled.
                    retired.append(pid)
                    continue
            rank = (0 if pid in moved_last else 1, dest_strip, pid)
            cur = sending_nodes.get(node)
            if cur is None or rank < cur:
                sending_nodes[node] = rank
        movers.difference_update(retired)
        chosen = {node: rank[2] for node, rank in sending_nodes.items()}
        if not chosen:
            break
        steps += 1
        if steps > bound:
            raise Section6Violation(
                f"March exceeded Lemma 29's bound of {bound} steps"
            )
        moved_last = set()
        for node, pid in sorted(chosen.items(), key=lambda kv: -axes.main(kv[0])):
            dest_strip = actives[pid]
            nxt = axes.step_main(node)
            census[(node, dest_strip)] -= 1
            census[(nxt, dest_strip)] = census.get((nxt, dest_strip), 0) + 1
            state.move(pid, nxt)
            moved_last.add(pid)
            # Settled movers (at the forward edge or behind a full node)
            # stay in `movers`; they simply produce no further moves.
    return steps


def run_sort_and_smooth(
    state: ClassState,
    tile: Tile,
    axes: Axes,
    actives: dict[int, int],
    parity: int,
    q: int = Q_REFUSAL,
) -> int:
    """Step 3, one parity substep of Sort and Smooth (Lemmas 22 and 30).

    Moves the active packets of every destination strip ``i`` with
    ``i % 2 == parity`` from strip ``i-3`` to strip ``i-2``: strip ``i-3``'s
    ``t``-th node (from the rear) starts forwarding its
    farthest-cross-to-go packet at step ``t``; strip ``i-2``'s ``t``-th node
    from the front holds every ``t``-th packet it receives, yielding the
    layered, sorted arrangement of Figure 6.
    """
    flows: dict[int, set[int]] = {}
    for pid, dest_strip in actives.items():
        if dest_strip % 2 == parity:
            flows.setdefault(dest_strip, set()).add(pid)
    if not flows:
        return 0
    d = tile.strip_height
    unsettled: set[int] = set().union(*flows.values())
    recv: dict[tuple[int, int], int] = {}
    transient: dict[tuple[int, int], list[int]] = {}
    last_sent_value: dict[tuple[int, int], int] = {}
    steps = 0
    bound = (d - 1) + q * d + d  # Lemma 30 per substep, with the +d tail

    while unsettled:
        steps += 1
        if steps > bound:
            raise Section6Violation(
                f"Sort and Smooth exceeded Lemma 30's bound of {bound} steps"
            )
        moves: list[tuple[int, tuple[int, int], bool]] = []
        in_transit = _flatten(transient)
        for dest_strip, pids in flows.items():
            lo3, _ = axes.strip_bounds(tile, dest_strip - 3)
            lo2, hi2 = axes.strip_bounds(tile, dest_strip - 2)
            # Rear strip: staggered farthest-first forwarding.
            by_node: dict[tuple[int, int], list[int]] = {}
            for pid in pids:
                if pid in unsettled and pid not in in_transit:
                    node = state.pos[pid]
                    if axes.strip(tile, node) == dest_strip - 3:
                        by_node.setdefault(node, []).append(pid)
            for node, candidates in by_node.items():
                t = axes.main(node) - lo3 + 1
                if steps < t:
                    continue
                pid = max(
                    candidates, key=lambda p: (axes.cross_to_go(state, p), -p)
                )
                moves.append((pid, node, True))
        # Front strip: transients continue forward, one per node per step.
        for node, queue in list(transient.items()):
            if queue:
                moves.append((queue[0], node, False))

        if not moves:
            # All remaining unsettled packets are waiting on the stagger.
            continue
        for pid, node, _from_rear in moves:
            queue = transient.get(node)
            if queue and queue[0] == pid:
                queue.pop(0)
            nxt = axes.step_main(node)
            state.move(pid, nxt)
            dest_strip = actives[pid]
            lo2, hi2 = axes.strip_bounds(tile, dest_strip - 2)
            if axes.main(nxt) < lo2:
                continue  # still inside strip i-3: remains a rear candidate
            # Arrived at a front-strip node: count and hold-or-pass.
            value = axes.cross_to_go(state, pid)
            prev = last_sent_value.get((nxt, dest_strip))
            if prev is not None and value > prev:
                raise Section6Violation(
                    "Sort and Smooth arrival stream not sorted: "
                    f"{value} after {prev} at {nxt} (merge invariant broken)"
                )
            last_sent_value[(nxt, dest_strip)] = value
            t_front = hi2 - axes.main(nxt) + 1
            r = recv.get(nxt, 0) + 1
            recv[nxt] = r
            if r % t_front == 0:
                unsettled.discard(pid)  # held: settles here
            else:
                transient.setdefault(nxt, []).append(pid)
    return steps


def _flatten(transient: dict[tuple[int, int], list[int]]) -> set[int]:
    out: set[int] = set()
    for queue in transient.values():
        out.update(queue)
    return out


def run_balancing(
    state: ClassState,
    tile: Tile,
    axes: Axes,
    actives: dict[int, int],
) -> int:
    """Step 4, Balancing via the 2-rule (Lemmas 16, 17, 23, 24, 31).

    Any node holding more than two active packets transmits the one with
    the farthest cross-distance to go, one hop along the cross axis.  By
    Lemma 17 this never overshoots a packet's destination line -- enforced
    here: a forced unprofitable move raises Section6Violation.
    """
    if not actives:
        return 0
    side = tile.side
    bound = max(3 * side - 4, 1)  # Lemma 31
    count: dict[tuple[int, int], list[int]] = {}
    for pid in actives:
        count.setdefault(state.pos[pid], []).append(pid)
    over = {node for node, pids in count.items() if len(pids) > 2}
    steps = 0

    while over:
        steps += 1
        if steps > bound:
            raise Section6Violation(
                f"Balancing exceeded Lemma 31's bound of {bound} steps"
            )
        moves: list[tuple[int, tuple[int, int]]] = []
        for node in sorted(over):
            pids = count[node]
            pid = max(pids, key=lambda p: (axes.cross_to_go(state, p), -p))
            if axes.cross_to_go(state, pid) <= 0:
                raise Section6Violation(
                    f"2-rule forced an overshoot at {node}: Lemma 16's "
                    "density bound is violated"
                )
            moves.append((pid, node))
        for pid, node in moves:
            nxt = axes.step_cross(node)
            count[node].remove(pid)
            state.move(pid, nxt)
            count.setdefault(nxt, []).append(pid)
        over = {node for node, pids in count.items() if len(pids) > 2}
    return steps
