"""Shared state for one Section 6 run.

The engine routes one direction class at a time.  Each class is handled in
*canonical* coordinates, mirrored so every packet moves north/east; node
occupancy (the queue-size claim of Theorem 34) is tracked in physical
coordinates across all classes, including packets of other classes parked
at their sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mesh.packet import Packet


class Section6Violation(AssertionError):
    """A Section 6 lemma failed during execution (minimality, queue or
    phase-time bound)."""


@dataclass
class Occupancy:
    """Physical per-node packet counts with a running maximum."""

    counts: dict[tuple[int, int], int] = field(default_factory=dict)
    max_load: int = 0

    def add(self, node: tuple[int, int]) -> None:
        c = self.counts.get(node, 0) + 1
        self.counts[node] = c
        if c > self.max_load:
            self.max_load = c

    def remove(self, node: tuple[int, int]) -> None:
        c = self.counts[node] - 1
        if c:
            self.counts[node] = c
        else:
            del self.counts[node]


class ClassState:
    """Positions and destinations of one direction class, canonical space.

    Args:
        n: Mesh side.
        mirror_x / mirror_y: Whether the class's physical coordinates are
            mirrored into canonical space (so canonical movement is
            north/east for every packet).
        packets: The class's packets (physical coordinates).
        occupancy: Shared physical occupancy tracker.
    """

    def __init__(
        self,
        n: int,
        mirror_x: bool,
        mirror_y: bool,
        packets: list[Packet],
        occupancy: Occupancy,
    ) -> None:
        self.n = n
        self.mirror_x = mirror_x
        self.mirror_y = mirror_y
        self.occupancy = occupancy
        self.pos: dict[int, tuple[int, int]] = {}
        self.dest: dict[int, tuple[int, int]] = {}
        self.delivered: set[int] = set()
        self.by_node: dict[tuple[int, int], set[int]] = {}
        for p in packets:
            cpos = self.to_canonical(p.pos)
            cdest = self.to_canonical(p.dest)
            if cpos == cdest:
                self.delivered.add(p.pid)
                continue
            self.pos[p.pid] = cpos
            self.dest[p.pid] = cdest
            self.by_node.setdefault(cpos, set()).add(p.pid)

    # -- coordinates ------------------------------------------------------------

    def to_canonical(self, node: tuple[int, int]) -> tuple[int, int]:
        x, y = node
        if self.mirror_x:
            x = self.n - 1 - x
        if self.mirror_y:
            y = self.n - 1 - y
        return (x, y)

    def to_physical(self, node: tuple[int, int]) -> tuple[int, int]:
        return self.to_canonical(node)  # mirroring is an involution

    # -- movement -----------------------------------------------------------------

    def move(self, pid: int, new_pos: tuple[int, int]) -> None:
        """One-hop move; asserts minimality (Theorem 20) and maintains
        occupancy.  Delivers the packet when it reaches its destination."""
        old = self.pos[pid]
        dest = self.dest[pid]
        # Minimality: the new position must be exactly one hop closer.
        dx_old = abs(dest[0] - old[0]) + abs(dest[1] - old[1])
        dx_new = abs(dest[0] - new_pos[0]) + abs(dest[1] - new_pos[1])
        if dx_new != dx_old - 1:
            raise Section6Violation(
                f"nonminimal move: packet {pid} {old} -> {new_pos} "
                f"(dest {dest}): the algorithm must be minimal adaptive"
            )
        old_bucket = self.by_node[old]
        old_bucket.discard(pid)
        if not old_bucket:
            del self.by_node[old]
        # Inlined to_physical (hot path: one call per packet-hop).
        n1 = self.n - 1
        ox = n1 - old[0] if self.mirror_x else old[0]
        oy = n1 - old[1] if self.mirror_y else old[1]
        self.occupancy.remove((ox, oy))
        if new_pos == dest:
            self.delivered.add(pid)
            del self.pos[pid]
            del self.dest[pid]
            return
        self.pos[pid] = new_pos
        bucket = self.by_node.get(new_pos)
        if bucket is None:
            self.by_node[new_pos] = {pid}
        else:
            bucket.add(pid)
        nx = n1 - new_pos[0] if self.mirror_x else new_pos[0]
        ny = n1 - new_pos[1] if self.mirror_y else new_pos[1]
        self.occupancy.add((nx, ny))

    # -- queries ---------------------------------------------------------------------

    def packets_at(self, node: tuple[int, int]) -> set[int]:
        return self.by_node.get(node, set())

    @property
    def undelivered(self) -> int:
        return len(self.pos)

    def east_to_go(self, pid: int) -> int:
        return self.dest[pid][0] - self.pos[pid][0]

    def north_to_go(self, pid: int) -> int:
        return self.dest[pid][1] - self.pos[pid][1]
