"""Performance layer: instrumentation probes, profiling, benchmarking.

This package owns everything wall-clock flavoured.  The simulator itself
never reads a clock (the static checker's SC002 rule enforces that); it
exposes phase-boundary hook points instead, and the probes here attach to
them.  Three entry points:

- :class:`StepInstrumentation` -- a cheap per-phase wall-time accumulator
  that plugs into ``Simulator.instrument`` and surfaces its measurements
  through ``RunResult.counters``.
- :func:`profile_run` / :func:`hotspot_table` -- cProfile wrappers behind
  the ``repro route --profile`` flag.
- :mod:`repro.perf.bench` -- the tracked throughput baseline behind
  ``repro bench`` (see docs/PERFORMANCE.md for the protocol).
"""

from repro.perf.instrumentation import StepInstrumentation
from repro.perf.profiling import hotspot_table, profile_run

__all__ = ["StepInstrumentation", "hotspot_table", "profile_run"]
