"""The tracked throughput baseline behind ``repro bench``.

A bench run executes a fixed (router x workload x n) matrix of ``bench``
trials through the campaign harness (always ``fresh`` -- cached timings
are not measurements), then reconciles the measured steps/s against
``BENCH_step_throughput.json`` at the repository root:

- every cell run this time is compared against the stored entry under the
  same key, and a drop larger than the tolerance is a **regression**;
- when the report is clean, the stored file is updated by merging: cells
  run this time replace their stored entries, cells not run are preserved
  untouched.  A regressed or failed report never touches the file -- a
  regression must keep firing on every run until the code is fixed or the
  baseline is refreshed deliberately, not silently become the new normal.

Keys are ``{engine}/{algorithm}/{workload}/n{n}/k{k}/s{seed}``, so smoke
and full matrices coexist in one file, and the array-backend entries
never ratchet against the reference engine's (a 20x speedup must not
become the floor the reference engine is held to, nor vice versa).  The
tolerance (default 20%) absorbs normal machine noise; see
docs/PERFORMANCE.md for the measurement protocol and the policy on
refreshing the baseline after intentional changes.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.harness.runner import CampaignRunResult
from repro.harness.specs import TrialSpec

#: Baseline filename, resolved against the repository root by default.
BENCH_FILENAME = "BENCH_step_throughput.json"

#: Default regression tolerance: fail when steps/s drops by more than this
#: fraction of the stored value.
DEFAULT_TOLERANCE = 0.2


def bench_key(spec: TrialSpec, engine: str | None = None) -> str:
    """The stable baseline key of one bench cell.

    The engine leads the key so reference and array measurements are
    separate ratchets: merging an array run never overwrites (or gets
    compared against) the reference entry for the same cell.

    Args:
        engine: The engine that *actually ran* the cell, when known.
            ``compare_and_merge`` always passes the ``sim.engine_name``
            readback recorded in the trial metrics, never the requested
            ``spec.engine`` -- a silent fallback (unported router, ND
            topology) must not file reference-speed numbers under an
            ``array/`` key.
    """
    return (
        f"{engine if engine is not None else spec.engine}"
        f"/{spec.algorithm}/{spec.workload}"
        f"/n{spec.n}/k{spec.k}/s{spec.seed}"
    )


@dataclass
class BenchComparison:
    """One cell's fresh measurement against its stored baseline entry."""

    key: str
    steps_per_s: float
    baseline_steps_per_s: float | None  # None: no stored entry yet
    tolerance: float

    @property
    def change(self) -> float | None:
        """Fractional change vs baseline (+ faster, - slower); None if new.

        The new-cell test is ``is None``, not falsiness: a *stored*
        ``steps_per_s`` of 0.0 is a real (degenerate) baseline, and any
        positive measurement against it is ``inf`` improvement, not a
        fresh cell.
        """
        if self.baseline_steps_per_s is None:
            return None
        if self.baseline_steps_per_s == 0.0:
            return math.inf if self.steps_per_s > 0.0 else 0.0
        return (self.steps_per_s - self.baseline_steps_per_s) / self.baseline_steps_per_s

    @property
    def regressed(self) -> bool:
        change = self.change
        return change is not None and change < -self.tolerance


@dataclass
class BenchReport:
    """Everything one ``run_bench`` call measured and decided."""

    comparisons: list[BenchComparison]
    failed_trials: list[str] = field(default_factory=list)
    baseline_path: pathlib.Path | None = None

    @property
    def regressions(self) -> list[BenchComparison]:
        return [c for c in self.comparisons if c.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.failed_trials

    def table(self) -> str:
        """The human-readable result table ``repro bench`` prints."""
        lines = [
            f"{'cell':<46} {'steps/s':>10} {'baseline':>10} {'change':>8}"
        ]
        for c in self.comparisons:
            if c.baseline_steps_per_s is None:
                baseline, change = "(new)", ""
            else:
                baseline = f"{c.baseline_steps_per_s:.1f}"
                frac = c.change
                change = f"{100.0 * frac:+.1f}%" if math.isfinite(frac) else "+inf"
                if c.regressed:
                    change += " !"
            lines.append(
                f"{c.key:<46} {c.steps_per_s:>10.1f} {baseline:>10} {change:>8}"
            )
        for name in self.failed_trials:
            lines.append(f"{name:<46} {'FAILED':>10}")
        return "\n".join(lines)


def load_baseline(path: pathlib.Path) -> dict[str, Any]:
    """The stored baseline document ({"entries": {key: cell}}), or empty."""
    if not path.exists():
        return {"entries": {}}
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or not isinstance(data.get("entries"), dict):
        raise ValueError(f"malformed bench baseline {path}: expected an 'entries' object")
    return data


def compare_and_merge(
    run: CampaignRunResult,
    baseline_path: pathlib.Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    update: bool = True,
) -> BenchReport:
    """Compare a bench campaign's cells against the baseline; merge on write.

    Only cells measured by *this* run are compared (and, with ``update``,
    rewritten); stored entries for other cells pass through untouched, so
    a smoke run never invalidates the full matrix.

    A regressed cell's stored entry is never replaced, and the file is not
    rewritten at all unless the whole report is ok: the ratchet must keep
    failing until the regression is fixed (or the baseline refreshed
    deliberately), not absorb the slowdown on its first firing.
    """
    baseline = load_baseline(baseline_path)
    entries: dict[str, Any] = baseline["entries"]
    merged: dict[str, Any] = dict(entries)
    comparisons: list[BenchComparison] = []
    failed: list[str] = []
    for trial in run.results:
        if trial.status != "ok" or trial.metrics is None:
            failed.append(bench_key(trial.spec))
            continue
        metrics = trial.metrics
        actual_engine = metrics.get("engine", trial.spec.engine)
        if actual_engine != trial.spec.engine:
            # Silent fallback (unported router, ND topology): the numbers
            # are real but belong to a different engine than the cell
            # requested.  Recording them would poison the requested
            # engine's ratchet, so the cell fails instead of merging.
            failed.append(
                f"{bench_key(trial.spec)}"
                f" (requested engine {trial.spec.engine!r}"
                f" but {actual_engine!r} ran)"
            )
            continue
        key = bench_key(trial.spec, engine=actual_engine)
        timing = metrics.get("timing", {})
        steps_per_s = float(timing.get("steps_per_s", 0.0))
        stored = entries.get(key)
        comparison = BenchComparison(
            key=key,
            steps_per_s=steps_per_s,
            baseline_steps_per_s=(
                float(stored["steps_per_s"]) if stored is not None else None
            ),
            tolerance=tolerance,
        )
        comparisons.append(comparison)
        if comparison.regressed:
            continue  # keep the old entry: the ratchet must keep failing
        merged[key] = {
            "steps_per_s": round(steps_per_s, 2),
            "wall_s": round(float(timing.get("wall_s", 0.0)), 4),
            "steps": metrics["steps"],
            "completed": metrics["completed"],
            "total_moves": metrics["total_moves"],
            "scheduled_moves": metrics["scheduled_moves"],
            "refused_moves": metrics["refused_moves"],
            "repeats": metrics.get("repeats", 1),
        }
    report = BenchReport(
        comparisons=comparisons,
        failed_trials=failed,
        baseline_path=baseline_path,
    )
    if update and report.ok:
        document = {
            "format": "repro-bench-v1",
            "tolerance": tolerance,
            "entries": {key: merged[key] for key in sorted(merged)},
        }
        baseline_path.write_text(json.dumps(document, indent=2) + "\n")
    return report
