"""cProfile helpers behind ``repro route --profile``.

Deterministic simulations profile cleanly: the same (spec, seed) produces
the same call tree, so two hot-spot tables differ only in timing columns.
The table is the artifact we paste into docs/PERFORMANCE.md when recording
a before/after comparison for an optimization.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, TypeVar

T = TypeVar("T")


def profile_run(fn: Callable[[], T]) -> tuple[T, cProfile.Profile]:
    """Run ``fn`` under cProfile; return its result and the profile."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, profiler


def hotspot_table(
    profiler: cProfile.Profile,
    *,
    limit: int = 20,
    sort: str = "tottime",
) -> str:
    """The top-``limit`` functions of a profile as a pstats text table.

    ``sort`` is any pstats sort key (``tottime``, ``cumtime``, ``ncalls``,
    ...).  The caller prints the string; nothing is written to stdout here.
    """
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    return buffer.getvalue()


def format_phase_summary(counters: dict[str, Any]) -> str:
    """One line per phase from instrumented counters, widest first.

    Accepts a ``RunResult.counters`` dict that includes the wall-clock
    keys of :class:`repro.perf.StepInstrumentation`; returns "" when the
    run was not instrumented.
    """
    wall = counters.get("wall_s")
    if not wall:
        return ""
    names = {
        "phase_a_s": "(a) outqueue",
        "phase_b_s": "(b) interceptor",
        "phase_c_s": "(c) inqueue",
        "phase_d_s": "(d) transmit",
        "phase_e_s": "(e) state update",
        "hooks_s": "hooks",
    }
    rows = [
        (names[key], counters[key])
        for key in names
        if counters.get(key, 0.0) > 0.0
    ]
    rows.sort(key=lambda r: -r[1])
    lines = [
        f"  {label:<18} {seconds:8.3f}s  {100.0 * seconds / wall:5.1f}%"
        for label, seconds in rows
    ]
    lines.insert(
        0,
        f"wall {wall:.3f}s, {counters.get('steps_per_s', 0.0):.1f} steps/s",
    )
    return "\n".join(lines)
