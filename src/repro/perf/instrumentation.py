"""Per-phase wall-time probe for the simulator's step loop.

The simulator marks six phase boundaries per step -- hooks, (a) outqueue,
(b) interceptor, (c) inqueue, (d) transmit, (e) state update -- but only
when an instrumentation object is attached; detached, the loop pays a
single ``is not None`` check per boundary.  The probe accumulates the
interval since the previous boundary into the named phase's bucket, so
the phase times of one step always sum to that step's wall time.

Wall-clock measurements are inherently nondeterministic, which is why
they live here rather than on the simulator (SC002 forbids ``time`` in
``repro.mesh``) and why :meth:`StepInstrumentation.snapshot` keys are
disjoint from the deterministic scheduling counters.
"""

from __future__ import annotations

from time import perf_counter

#: Phase labels in simulator marking order (see ``Simulator.step``).
PHASES: tuple[str, ...] = ("hooks", "a", "b", "c", "d", "e")


class StepInstrumentation:
    """Accumulates per-phase and total wall time across steps.

    Attach with ``sim.instrument = StepInstrumentation()`` before running;
    read the totals from :meth:`snapshot` (or ``RunResult.counters``,
    which merges them).  The probe is reusable across steps but not
    thread-safe; use one instance per simulator.
    """

    __slots__ = ("steps", "wall_s", "phase_s", "_t0", "_last")

    def __init__(self) -> None:
        self.steps = 0
        self.wall_s = 0.0
        self.phase_s: dict[str, float] = {p: 0.0 for p in PHASES}
        self._t0 = 0.0
        self._last = 0.0

    def begin_step(self) -> None:
        """Called by the simulator at the top of every step."""
        self._t0 = self._last = perf_counter()

    def mark(self, phase: str) -> None:
        """Attribute the time since the previous boundary to ``phase``.

        ``phase`` may repeat within a step (``"hooks"`` marks both pre- and
        post-step hook blocks); repeats accumulate into the same bucket.
        """
        now = perf_counter()
        self.phase_s[phase] += now - self._last
        self._last = now

    def end_step(self) -> None:
        """Called by the simulator after the last phase of every step."""
        self.steps += 1
        self.wall_s += perf_counter() - self._t0

    def snapshot(self) -> dict[str, float]:
        """Wall-clock counters: total, throughput, and per-phase seconds.

        Keys: ``wall_s``, ``steps_per_s``, ``hooks_s``, and ``phase_X_s``
        for X in a..e.  All values are nondeterministic (machine- and
        load-dependent); deterministic counters live on the simulator.
        """
        out: dict[str, float] = {
            "wall_s": self.wall_s,
            "steps_per_s": self.steps / self.wall_s if self.wall_s > 0 else 0.0,
        }
        for phase, seconds in self.phase_s.items():
            key = "hooks_s" if phase == "hooks" else f"phase_{phase}_s"
            out[key] = seconds
        return out
