"""Saturation sweeps: where does each router's delivered rate knee over?

A saturation sweep runs :func:`~repro.streaming.run.run_streaming` at a
ladder of nominal injection rates and watches two curves:

- **offered rate** grows linearly with the nominal rate (open loop --
  sources do not slow down);
- **delivered rate** tracks it until the network saturates, then knees
  over: into a plateau when the router stays live under admission
  backpressure (Theorem 15's four-queue router, hot-potato), or into a
  collapse when sustained overload exchange-deadlocks a central-queue
  router (the documented Section 2 caveat) -- the ``outcome`` column
  distinguishes *drained* from *wedged* runs.

The *knee* reported here is the first nominal rate at which the
delivered rate falls below ``threshold`` (default 95%) of the measured
offered rate.  Below the knee the network keeps up; above it, latency
percentiles, rejection fractions, and (for the central-queue routers)
deadlock all appear -- exactly the regime where the paper's
bounded-queue guarantees earn their keep.

Everything is deterministic: same spec, same bytes, any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.topology import Topology
from repro.streaming.arrivals import build_process
from repro.streaming.run import run_streaming

#: Default nominal injection-rate ladder (packets per node per step).
#: Spans well-below-capacity to far-past-saturation for the bounded-queue
#: routers on the mesh sizes the sweeps use (n in {16, 32}).
DEFAULT_RATES = (0.02, 0.05, 0.1, 0.2, 0.4, 0.8)


@dataclass(frozen=True)
class SweepPoint:
    """One rung of the rate ladder: nominal rate plus its metrics row."""

    rate: float
    metrics: dict[str, Any]


@dataclass
class SweepResult:
    """A full sweep for one (algorithm, mesh, process) combination."""

    algorithm: str
    n: int
    process: str
    points: list[SweepPoint] = field(default_factory=list)

    def saturation_rate(self, threshold: float = 0.95) -> float | None:
        """First nominal rate where delivery drops below the threshold.

        Compares delivered rate against the *measured* offered rate (not
        the nominal one), so the knee is about network capacity rather
        than sampling noise in the arrival process.  Returns ``None``
        when the network keeps up at every swept rate.
        """
        for point in self.points:
            offered = point.metrics["offered_rate"]
            if offered <= 0.0:
                continue
            if point.metrics["delivered_rate"] < threshold * offered:
                return point.rate
        return None

    def to_rows(self) -> list[dict[str, Any]]:
        """Flat rows (one per rate) for tables and JSON artifacts."""
        return [
            {
                "algorithm": self.algorithm,
                "n": self.n,
                "process": self.process,
                "rate": point.rate,
                **point.metrics,
            }
            for point in self.points
        ]


def sweep_saturation(
    topology: Topology,
    algorithm: RoutingAlgorithm,
    *,
    algorithm_name: str,
    process: str = "poisson",
    rates: tuple[float, ...] = DEFAULT_RATES,
    seed: int = 0,
    warmup: int = 64,
    measure: int = 256,
    drain: int = 512,
) -> SweepResult:
    """Sweep ``algorithm`` on ``topology`` across the injection-rate ladder.

    Each rung is an independent :func:`run_streaming` call (own simulator,
    own arrival process at the same seed), so rungs are trivially
    parallelizable and the result is identical however they are scheduled.
    """
    result = SweepResult(
        algorithm=algorithm_name, n=topology.width, process=process
    )
    for rate in rates:
        report = run_streaming(
            topology,
            algorithm,
            build_process(process, rate, seed=seed),
            warmup=warmup,
            measure=measure,
            drain=drain,
        )
        result.points.append(SweepPoint(rate=rate, metrics=report.to_metrics()))
    return result


def format_sweep_markdown(results: list[SweepResult]) -> str:
    """Markdown saturation table, one row per (algorithm, n, rate).

    The shape EXPERIMENTS.md embeds: delivered vs offered rate, rejection
    fraction, p50/p99 latency, max queue length, and the per-sweep knee.
    """
    lines = [
        "| algorithm | n | process | rate | offered | delivered | rejected | "
        "p50 | p99 | outcome | knee |",
        "|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for result in results:
        knee = result.saturation_rate()
        knee_text = f"{knee:g}" if knee is not None else "-"
        for point in result.points:
            m = point.metrics
            if m["stalled"]:
                outcome = "wedged"
            elif m["drained"]:
                outcome = "drained"
            else:
                outcome = "slow"
            lines.append(
                "| {alg} | {n} | {proc} | {rate:g} | {off:.3f} | {dlv:.3f} | "
                "{rej:.1%} | {p50} | {p99} | {out} | {knee} |".format(
                    alg=result.algorithm,
                    n=result.n,
                    proc=result.process,
                    rate=point.rate,
                    off=m["offered_rate"],
                    dlv=m["delivered_rate"],
                    rej=m["rejection_fraction"],
                    p50=m["latency_p50"],
                    p99=m["latency_p99"],
                    out=outcome,
                    knee=knee_text,
                )
            )
    return "\n".join(lines)
