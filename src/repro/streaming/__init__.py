"""Open-loop streaming injection: arrival processes, saturation sweeps,
and the live ``repro serve`` service.

The closed-loop harness answers "how fast does this instance finish?";
this package answers "what offered load can this router sustain?".  See
docs/STREAMING.md for the experiment protocol and the serve wire format.
"""

from repro.streaming.arrivals import (
    ArrivalProcess,
    DestinationModel,
    HotspotDestinations,
    MAX_ARRIVALS_PER_STEP,
    OnOffArrivals,
    PROCESS_NAMES,
    PoissonArrivals,
    UniformDestinations,
    build_process,
    poisson_count,
)
from repro.streaming.run import StreamingReport, offer_packet, run_streaming
from repro.streaming.serve import StreamingService, serve_forever
from repro.streaming.sweep import (
    DEFAULT_RATES,
    SweepPoint,
    SweepResult,
    format_sweep_markdown,
    sweep_saturation,
)

__all__ = [
    "ArrivalProcess",
    "DestinationModel",
    "HotspotDestinations",
    "MAX_ARRIVALS_PER_STEP",
    "OnOffArrivals",
    "PROCESS_NAMES",
    "PoissonArrivals",
    "UniformDestinations",
    "build_process",
    "poisson_count",
    "StreamingReport",
    "offer_packet",
    "run_streaming",
    "StreamingService",
    "serve_forever",
    "DEFAULT_RATES",
    "SweepPoint",
    "SweepResult",
    "format_sweep_markdown",
    "sweep_saturation",
]
