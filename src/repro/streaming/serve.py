"""Live injection service: drive one simulator over a TCP socket.

``python -m repro serve`` keeps a single :class:`Simulator` alive and
lets clients inject traffic, advance time, and read metrics over
newline-delimited JSON (one request object per line, one response object
per line, UTF-8).  The wire format is documented in docs/STREAMING.md;
in short:

- ``{"cmd": "inject", "source": [x, y], "dest": [x, y], "count": 1}``
  offers packets through the same admission gate as the batch driver
  (:func:`~repro.streaming.run.offer_packet`): full source queues refuse
  packets and the response reports ``admitted`` / ``rejected`` counts --
  backpressure is part of the protocol, not an error.
- ``{"cmd": "step", "steps": 8}`` advances simulated time; clients own
  the clock, so every session is exactly replayable from its request log.
- ``{"cmd": "drain", "max_steps": 1024}`` steps until every packet is
  resolved or the budget runs out.
- ``{"cmd": "snapshot"}`` returns the live metrics row (delivery counts,
  latency percentiles, rejection counts, oracle violation counts).
- ``{"cmd": "shutdown"}`` stops the server after acknowledging.

The service is deliberately single-simulator and sequential: requests
are applied in arrival order on one event loop, so concurrent clients
interleave at request granularity and the metrics snapshot is always
taken at a step boundary.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable

from repro.analysis.stats import latency_percentiles, violation_counts
from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import Simulator
from repro.mesh.topology import Topology
from repro.streaming.run import STALL_STEPS, offer_packet
from repro.verify.oracles import (
    MinimalityOracle,
    PacketConservationOracle,
    QueueBoundOracle,
    attach_checker,
)

#: Per-request clamps: the service is a measurement tool, not a job
#: runner, so one request may not burn unbounded CPU.
MAX_STEPS_PER_REQUEST = 10_000
MAX_INJECT_PER_REQUEST = 10_000


class ServiceError(ValueError):
    """A malformed or out-of-range request (reported, never fatal)."""


def _parse_node(value: Any, label: str, topology: Topology) -> tuple[int, int]:
    """Decode a ``[x, y]`` JSON pair into an in-topology node."""
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(c, int) and not isinstance(c, bool) for c in value)
    ):
        raise ServiceError(f"{label} must be a [x, y] pair of integers")
    node = (value[0], value[1])
    if not topology.contains(node):
        raise ServiceError(f"{label} {node} outside the {topology.width}x{topology.height} mesh")
    return node


def _parse_count(value: Any, label: str, default: int, limit: int) -> int:
    """Decode an optional positive integer field with an upper clamp."""
    if value is None:
        return default
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ServiceError(f"{label} must be a positive integer")
    if value > limit:
        raise ServiceError(f"{label} must be <= {limit}")
    return value


class StreamingService:
    """The sequential request handler behind ``python -m repro serve``.

    Owns one simulator with record-mode oracles attached and applies one
    request at a time -- a plain synchronous state machine, so it is
    testable without any networking and trivially deterministic.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: RoutingAlgorithm,
        *,
        oracle_mode: str = "record",
    ) -> None:
        self.topology = topology
        self.sim = Simulator(topology, algorithm, [], validate=False)
        self.checker = attach_checker(
            self.sim,
            [PacketConservationOracle(), QueueBoundOracle(), MinimalityOracle()],
            mode=oracle_mode,
        )
        self.injected_at: dict[int, int] = {}
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self._next_pid = 0
        # Same-step admission accounting, reset at every step boundary.
        self._space_left: dict[tuple[tuple[int, int], Any], int] = {}

    def handle(self, request: Any) -> dict[str, Any]:
        """Apply one decoded request, returning the response object."""
        try:
            if not isinstance(request, dict):
                raise ServiceError("request must be a JSON object")
            cmd = request.get("cmd")
            if cmd == "inject":
                return self._inject(request)
            if cmd == "step":
                return self._step(request)
            if cmd == "drain":
                return self._drain(request)
            if cmd == "snapshot":
                return {"ok": True, "metrics": self.snapshot()}
            if cmd == "shutdown":
                return {"ok": True, "bye": True}
            raise ServiceError(f"unknown cmd {cmd!r}")
        except ServiceError as exc:
            return {"ok": False, "error": str(exc)}

    def handle_line(self, line: bytes | str) -> dict[str, Any]:
        """Decode one NDJSON request line and apply it."""
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"bad JSON: {exc.msg}"}
        return self.handle(request)

    def _inject(self, request: dict[str, Any]) -> dict[str, Any]:
        source = _parse_node(request.get("source"), "source", self.topology)
        dest = _parse_node(request.get("dest"), "dest", self.topology)
        if source == dest:
            raise ServiceError("source and dest must differ")
        count = _parse_count(
            request.get("count"), "count", 1, MAX_INJECT_PER_REQUEST
        )
        admitted = 0
        for _ in range(count):
            packet = Packet(
                self._next_pid, source, dest, injection_time=self.sim.time
            )
            self._next_pid += 1
            self.offered += 1
            if offer_packet(self.sim, packet, self._space_left):
                self.injected_at[packet.pid] = self.sim.time
                self.admitted += 1
                admitted += 1
            else:
                self.rejected += 1
        return {
            "ok": True,
            "admitted": admitted,
            "rejected": count - admitted,
            "time": self.sim.time,
        }

    def _step(self, request: dict[str, Any]) -> dict[str, Any]:
        steps = _parse_count(
            request.get("steps"), "steps", 1, MAX_STEPS_PER_REQUEST
        )
        for _ in range(steps):
            self._space_left = {}
            self.sim.step()
        return {
            "ok": True,
            "time": self.sim.time,
            "delivered": len(self.sim.delivery_times),
            "in_flight": self.sim.in_flight,
        }

    def _drain(self, request: dict[str, Any]) -> dict[str, Any]:
        budget = _parse_count(
            request.get("max_steps"), "max_steps", 1024, MAX_STEPS_PER_REQUEST
        )
        used = 0
        idle = 0
        while not self.sim.done and used < budget and idle < STALL_STEPS:
            moves_before = self.sim.total_moves
            self._space_left = {}
            self.sim.step()
            used += 1
            idle = idle + 1 if self.sim.total_moves == moves_before else 0
        return {
            "ok": True,
            "time": self.sim.time,
            "steps_used": used,
            "drained": self.sim.done,
            "stalled": not self.sim.done and idle >= STALL_STEPS,
        }

    def snapshot(self) -> dict[str, Any]:
        """The live metrics row (same vocabulary as the batch driver)."""
        sim = self.sim
        latencies = sorted(
            sim.delivery_times[pid] - t0
            for pid, t0 in self.injected_at.items()
            if pid in sim.delivery_times
        )
        counts = violation_counts(self.checker.violations)
        return {
            "time": sim.time,
            "offered_packets": self.offered,
            "admitted_packets": self.admitted,
            "rejected_packets": self.rejected,
            "delivered_packets": len(sim.delivery_times),
            "in_flight": sim.in_flight,
            "drained": sim.done,
            **latency_percentiles(latencies, (50, 95, 99)),
            "queue_bound_violations": counts.get(QueueBoundOracle.name, 0),
            "conservation_violations": counts.get(
                PacketConservationOracle.name, 0
            ),
            "minimality_violations": counts.get(MinimalityOracle.name, 0),
        }


async def serve_forever(
    service: StreamingService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    on_ready: Callable[[str, int], None] | None = None,
) -> None:
    """Run the NDJSON TCP server until a client sends ``shutdown``.

    ``port=0`` binds an ephemeral port; ``on_ready`` receives the actual
    ``(host, port)`` once listening, which is how the CLI announces the
    address to stdout for scripted clients.
    """
    stopping = asyncio.Event()

    async def handle_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response = service.handle_line(line)
                writer.write(
                    (json.dumps(response, sort_keys=True) + "\n").encode()
                )
                await writer.drain()
                if response.get("bye"):
                    stopping.set()
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    server = await asyncio.start_server(handle_connection, host, port)
    try:
        bound = server.sockets[0].getsockname()
        if on_ready is not None:
            on_ready(bound[0], bound[1])
        await stopping.wait()
    finally:
        server.close()
        await server.wait_closed()
