"""Open-loop arrival processes as pure functions of ``(seed, source, time)``.

The closed-loop workloads route a fixed instance to completion; the
streaming layer instead offers traffic forever at a configurable rate --
the competitive online model of Even--Medina's grid-routing line (see
PAPERS.md).  Every arrival decision here follows the same counter-hash
purity discipline as :mod:`repro.faults.plan`: a draw is a splitmix64
hash of ``(seed, domain, source, time, index)``, never a position in a
shared RNG stream, so

- the arrivals at ``(source, t)`` are identical no matter how many other
  queries happened first, in what order, or on which worker;
- any ``(source, step)`` batch can be recomputed in isolation (replay,
  property tests, the serve service's deterministic fill traffic);
- saturation sweeps are byte-identical across ``--workers 1`` and
  ``--workers 4``.

Two rate models are provided -- :class:`PoissonArrivals` (memoryless) and
:class:`OnOffArrivals` (bursty Markov-modulated on/off) -- each paired
with a destination model: :class:`UniformDestinations` (uniform over all
nodes except the source) or :class:`HotspotDestinations` (a tunable
fraction of traffic aimed at one hot node).  :func:`build_process` maps
the campaign-spec names (``poisson`` / ``onoff`` / ``hotspot``) onto the
right combination.
"""

from __future__ import annotations

import math
from bisect import bisect_left

from repro.faults.plan import counter_draw
from repro.mesh.topology import Topology

#: Domain tags keep draws for different purposes statistically independent
#: even when the remaining counters coincide.
_DOMAIN_COUNT = 101
_DOMAIN_DEST = 102
_DOMAIN_HOTSPOT = 103
_DOMAIN_WINDOW = 104

#: Hard cap on arrivals per (source, step): Poisson inversion terminates
#: long before this, but a bound keeps adversarial rates from spinning.
MAX_ARRIVALS_PER_STEP = 64


def poisson_count(u: float, rate: float) -> int:
    """Invert a uniform draw into a Poisson(``rate``) count.

    Plain CDF inversion: deterministic, branch-free of RNG state, exact
    for the small rates (packets per node per step) this layer uses.
    """
    if rate <= 0.0:
        return 0
    k = 0
    p = math.exp(-rate)
    cdf = p
    while u >= cdf and k < MAX_ARRIVALS_PER_STEP:
        k += 1
        p *= rate / k
        cdf += p
    return k


class DestinationModel:
    """Base destination chooser: a pure function of (source, time, index)."""

    def draw(
        self,
        topology: Topology,
        source: tuple[int, int],
        time: int,
        index: int,
    ) -> tuple[int, int]:
        """Destination of the ``index``-th arrival at ``source`` during
        ``time``.  Never equals ``source`` (self-traffic would be delivered
        at zero latency and pollute every throughput figure)."""
        raise NotImplementedError

    def _uniform_other(
        self,
        topology: Topology,
        source: tuple[int, int],
        u: float,
    ) -> tuple[int, int]:
        """Map a uniform draw onto the nodes of ``topology`` minus ``source``."""
        n = topology.num_nodes
        if n < 2:
            raise ValueError("destination draw needs at least two nodes")
        j = min(int(u * (n - 1)), n - 2)
        if j >= topology.node_index(source):
            j += 1
        return (j // topology.height, j % topology.height)


class UniformDestinations(DestinationModel):
    """Uniform random destinations over every node except the source."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def draw(
        self,
        topology: Topology,
        source: tuple[int, int],
        time: int,
        index: int,
    ) -> tuple[int, int]:
        u = counter_draw(self.seed, _DOMAIN_DEST, source[0], source[1], time, index)
        return self._uniform_other(topology, source, u)


class HotspotDestinations(DestinationModel):
    """A ``fraction`` of traffic aims at one hot node, the rest uniform.

    Args:
        fraction: Probability an arrival targets the hotspot, in [0, 1].
            1.0 sends *everything* to the hotspot (the classic worst-case
            concentration workload); 0.0 degenerates to uniform.
        hotspot: The hot node; defaults to the topology's center node
            (chosen per draw, so one model instance works on any size).
        seed: Hash seed shared with the uniform fallback.
    """

    def __init__(
        self,
        fraction: float,
        hotspot: tuple[int, int] | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"hotspot fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self.hotspot = hotspot
        self.seed = seed

    def _hot_node(self, topology: Topology) -> tuple[int, int]:
        if self.hotspot is not None:
            return self.hotspot
        return (topology.width // 2, topology.height // 2)

    def draw(
        self,
        topology: Topology,
        source: tuple[int, int],
        time: int,
        index: int,
    ) -> tuple[int, int]:
        hot = self._hot_node(topology)
        if self.fraction > 0.0 and hot != source:
            u = counter_draw(
                self.seed, _DOMAIN_HOTSPOT, source[0], source[1], time, index
            )
            if u < self.fraction:
                return hot
        # Fallback: uniform over the other nodes (also taken by traffic
        # originating *at* the hotspot, which cannot target itself).
        u = counter_draw(self.seed, _DOMAIN_DEST, source[0], source[1], time, index)
        return self._uniform_other(topology, source, u)


class ArrivalProcess:
    """Base open-loop arrival process.

    Subclasses implement :meth:`count` (arrivals offered at a source
    during one step) as a pure function of ``(seed, source, time)``; the
    shared :meth:`arrivals` pairs each arrival with a destination from
    the process's destination model.
    """

    name = "arrivals"

    def __init__(self, destinations: DestinationModel) -> None:
        self.destinations = destinations

    def count(self, source: tuple[int, int], time: int) -> int:
        """Packets offered at ``source`` during step ``time``."""
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Long-run offered packets per node per step."""
        raise NotImplementedError

    def arrivals(
        self, topology: Topology, source: tuple[int, int], time: int
    ) -> tuple[tuple[int, int], ...]:
        """Destinations of every packet offered at ``(source, time)``.

        A pure function of the process parameters and its arguments --
        query order, repetition, and worker placement are all irrelevant.
        """
        k = self.count(source, time)
        dest = self.destinations.draw
        return tuple(dest(topology, source, time, i) for i in range(k))


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: count ~ Poisson(``rate``) per node per step.

    Args:
        rate: Mean offered packets per node per step, >= 0 (0 is a legal
            silent source -- useful for composition and edge-case tests).
        destinations: Destination model (default uniform, same seed).
        seed: Hash seed.
    """

    name = "poisson"

    def __init__(
        self,
        rate: float,
        destinations: DestinationModel | None = None,
        seed: int = 0,
    ) -> None:
        if rate < 0.0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        super().__init__(destinations or UniformDestinations(seed))
        self.rate = float(rate)
        self.seed = seed

    def count(self, source: tuple[int, int], time: int) -> int:
        if self.rate == 0.0:
            return 0
        u = counter_draw(self.seed, _DOMAIN_COUNT, source[0], source[1], time)
        return poisson_count(u, self.rate)

    def mean_rate(self) -> float:
        return self.rate


class OnOffArrivals(ArrivalProcess):
    """Bursty Markov-modulated on/off arrivals.

    Every source runs its own alternating on/off renewal process (the
    same pure lazy unfold as :class:`repro.faults.plan.RenewalOutagePlan`):
    *on* windows of mean length ``burst_len`` during which arrivals are
    Poisson(``rate``), *off* windows of mean length ``gap_len`` with no
    arrivals.  Window lengths are ``1 + floor(Exp(mean - 1))`` steps, so a
    mean of exactly 1 gives deterministic length-1 windows (the edge case
    of a burst that is a single step).

    Args:
        rate: Offered packets per node per step *while on*, >= 0.
        burst_len: Mean on-window length in steps, >= 1.
        gap_len: Mean off-window length in steps, >= 1.
        destinations: Destination model (default uniform, same seed).
        seed: Hash seed.
    """

    name = "onoff"

    def __init__(
        self,
        rate: float,
        burst_len: float,
        gap_len: float,
        destinations: DestinationModel | None = None,
        seed: int = 0,
    ) -> None:
        if rate < 0.0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        if burst_len < 1 or gap_len < 1:
            raise ValueError(
                f"burst_len and gap_len must be >= 1, got {burst_len}, {gap_len}"
            )
        super().__init__(destinations or UniformDestinations(seed))
        self.rate = float(rate)
        self.burst_len = float(burst_len)
        self.gap_len = float(gap_len)
        self.seed = seed
        # Per-source window starts: _starts[source][i] is the first step of
        # window i; even windows are on, odd are off.  A pure lazy unfold
        # (window i's length depends only on (seed, source, i)), so caching
        # never breaks query-order independence.
        self._starts: dict[tuple[int, int], list[int]] = {}

    def _window_len(self, source: tuple[int, int], index: int) -> int:
        mean = self.burst_len if index % 2 == 0 else self.gap_len
        if mean <= 1.0:
            return 1
        u = counter_draw(
            self.seed, _DOMAIN_WINDOW, source[0], source[1], index
        )
        return 1 + int(-(mean - 1.0) * math.log1p(-u))

    def is_on(self, source: tuple[int, int], time: int) -> bool:
        """Is ``source`` inside an on window during step ``time``?"""
        starts = self._starts.get(source)
        if starts is None:
            starts = self._starts.setdefault(source, [0])
        while starts[-1] <= time:
            starts.append(starts[-1] + self._window_len(source, len(starts) - 1))
        return (bisect_left(starts, time + 1) - 1) % 2 == 0

    def count(self, source: tuple[int, int], time: int) -> int:
        if self.rate == 0.0 or not self.is_on(source, time):
            return 0
        u = counter_draw(self.seed, _DOMAIN_COUNT, source[0], source[1], time)
        return poisson_count(u, self.rate)

    def mean_rate(self) -> float:
        return self.rate * self.burst_len / (self.burst_len + self.gap_len)


#: Arrival-process names a streaming trial spec may use.
PROCESS_NAMES = ("poisson", "onoff", "hotspot")


def build_process(
    name: str,
    rate: float,
    seed: int = 0,
    *,
    burst_len: float = 8.0,
    gap_len: float = 8.0,
    hotspot_fraction: float = 0.5,
) -> ArrivalProcess:
    """The named arrival process at ``rate`` (shared by CLI and harness).

    ``poisson`` and ``hotspot`` offer ``rate`` packets per node per step
    in the long run; ``onoff`` offers ``rate`` only inside bursts, i.e.
    ``rate * burst/(burst+gap)`` long-run -- callers sweeping offered
    load compare processes via :meth:`ArrivalProcess.mean_rate`.
    """
    if name == "poisson":
        return PoissonArrivals(rate, seed=seed)
    if name == "onoff":
        return OnOffArrivals(rate, burst_len, gap_len, seed=seed)
    if name == "hotspot":
        return PoissonArrivals(
            rate,
            destinations=HotspotDestinations(hotspot_fraction, seed=seed),
            seed=seed,
        )
    raise ValueError(
        f"unknown arrival process {name!r}; expected one of {PROCESS_NAMES}"
    )
