"""Continuous open-loop simulation: inject, route, measure, drain.

:func:`run_streaming` drives one simulator under an
:class:`~repro.streaming.arrivals.ArrivalProcess` instead of a fixed
instance.  Per step, every node's arrivals are *offered* to the network
in deterministic (column-major node) order; an arrival is **admitted**
when its initial queue has space left this step and **rejected**
otherwise (:meth:`Simulator.reject_packet` -- the open-loop analogue of
a dropped call, visible to the conservation oracle).  The run is split
into the standard three windows:

- **warmup** steps fill the network to steady state (excluded from
  every measured figure);
- **measure** steps define the measured population: packets *offered*
  during this window produce the offered/delivered rates and latency
  percentiles;
- **drain** steps stop injection and let in-flight packets finish, so
  measured latencies are not truncated at the horizon.

The verify oracles attach in ``record`` mode by default, so queue
overflows under overload are *counted*, not fatal -- exactly what a
saturation sweep wants to see.  Everything reported is a pure function
of (topology, algorithm, process, windows): byte-identical across
repeats, worker counts, and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.stats import latency_percentiles, violation_counts
from repro.mesh.interfaces import RoutingAlgorithm
from repro.mesh.packet import Packet
from repro.mesh.simulator import RunResult, Simulator
from repro.mesh.topology import Topology
from repro.streaming.arrivals import ArrivalProcess
from repro.verify.oracles import (
    MinimalityOracle,
    PacketConservationOracle,
    QueueBoundOracle,
    Violation,
    attach_checker,
)

#: Consecutive zero-move steps after which the drain declares a wedge.
#: Sustained overload can *exchange-deadlock* the central-queue routers
#: (full neighbours refusing each other's head forever -- the documented
#: Section 2 caveat that motivates Theorem 15's four incoming queues);
#: a wedged network makes no move ever again, but phase-based routers may
#: legitimately idle a few steps, hence a threshold rather than one step.
STALL_STEPS = 16


@dataclass
class StreamingReport:
    """Everything one open-loop streaming run produced.

    Attributes:
        result: The simulator's :class:`RunResult` after the drain.
        violations: Invariant violations the record-mode oracles saw.
        offered / admitted / rejected: Packet counts over the whole run
            (warmup + measure; the drain injects nothing).
        offered_measured / admitted_measured / rejected_measured /
        delivered_measured: The same counts restricted to packets offered
            during the measurement window (delivery may happen later).
        nodes: Node count (the rate denominators).
        measure: Measurement-window length in steps.
        latencies: Sorted delivery - injection latencies of the measured,
            delivered packets.
        drained: True when every admitted packet was resolved before the
            drain budget ran out.
        stalled: True when the drain detected a wedged network (no move
            for :data:`STALL_STEPS` consecutive steps with packets still
            in flight) -- the overload exchange-deadlock of central-queue
            routers, reported as data rather than an error.
        engine: The step engine that *actually* ran
            (:attr:`Simulator.engine_name`) -- the requested engine is a
            hint that can silently fall back to the reference engine, and
            throughput metrics are meaningless without knowing which one
            produced them.
    """

    result: RunResult
    violations: list[Violation]
    engine: str
    offered: int
    admitted: int
    rejected: int
    offered_measured: int
    admitted_measured: int
    rejected_measured: int
    delivered_measured: int
    nodes: int
    measure: int
    latencies: list[int]
    drained: bool
    stalled: bool

    @property
    def ok(self) -> bool:
        """No invariant was violated (delivery may still be partial)."""
        return not self.violations

    @property
    def offered_rate(self) -> float:
        """Empirical offered packets per node per step, measured window."""
        return self.offered_measured / (self.nodes * self.measure)

    @property
    def delivered_rate(self) -> float:
        """Delivered packets per node per step, of the measured offers."""
        return self.delivered_measured / (self.nodes * self.measure)

    @property
    def rejection_fraction(self) -> float:
        """Share of measured offers refused at admission."""
        if self.offered_measured == 0:
            return 0.0
        return self.rejected_measured / self.offered_measured

    def to_metrics(self) -> dict[str, Any]:
        """Flat, JSON-serializable, deterministic metrics row."""
        counts = violation_counts(self.violations)
        return {
            "engine": self.engine,
            "steps": self.result.steps,
            "offered_packets": self.offered,
            "admitted_packets": self.admitted,
            "rejected_packets": self.rejected,
            "offered_measured": self.offered_measured,
            "admitted_measured": self.admitted_measured,
            "rejected_measured": self.rejected_measured,
            "delivered_measured": self.delivered_measured,
            "offered_rate": self.offered_rate,
            "delivered_rate": self.delivered_rate,
            "rejection_fraction": self.rejection_fraction,
            "drained": self.drained,
            "stalled": self.stalled,
            "max_queue_len": self.result.max_queue_len,
            "max_node_load": self.result.max_node_load,
            "total_moves": self.result.total_moves,
            **latency_percentiles(self.latencies, (50, 95, 99)),
            "queue_bound_violations": counts.get(QueueBoundOracle.name, 0),
            "conservation_violations": counts.get(
                PacketConservationOracle.name, 0
            ),
            "minimality_violations": counts.get(MinimalityOracle.name, 0),
        }


def offer_packet(
    sim: Simulator,
    packet: Packet,
    space_left: dict[tuple[tuple[int, int], Any], int],
) -> bool:
    """Offer one packet for admission; admit or reject, return admitted.

    The admission rule is purely local: the packet is admitted iff the
    queue it would initially join (``queue_spec.initial_key`` of its
    profitable directions at the source) still has space *this step*,
    counting earlier same-step admissions.  ``space_left`` carries that
    same-step accounting -- callers must pass a fresh dict at every step
    boundary.  Rejections go through :meth:`Simulator.reject_packet`, so
    they stay visible to the conservation oracle.
    """
    spec = sim.algorithm.queue_spec
    key = spec.initial_key(
        sim.topology.profitable_directions(packet.source, packet.dest)
    )
    slot = (packet.source, key)
    space = space_left.get(slot)
    if space is None:
        # Engine-portable occupancy read: the array engine answers from its
        # occupancy array without materializing queue contents.
        space = spec.capacity - sim.queue_occupancy(packet.source, key)
    space_left[slot] = space - 1
    if space <= 0:
        sim.reject_packet(packet)
        return False
    sim.inject_packet(packet)
    return True


def run_streaming(
    topology: Topology,
    algorithm: RoutingAlgorithm,
    process: ArrivalProcess,
    *,
    warmup: int,
    measure: int,
    drain: int,
    oracle_mode: str = "record",
    plan: Any | None = None,
    engine: str = "reference",
) -> StreamingReport:
    """Route ``process``'s open-loop traffic through ``algorithm``.

    Args:
        warmup: Steps of injection before measurement starts, >= 0.
        measure: Steps of measured injection, >= 1.
        drain: Steps without injection to let in-flight packets finish,
            >= 0.  The run stops early once every packet is resolved.
        oracle_mode: ``record`` (default) counts violations without
            aborting; ``strict`` raises on the first one (tests); ``off``
            disables the oracles.
        plan: Optional :class:`repro.faults.plan.FaultPlan` attached as
            the link filter -- streaming under faults composes freely.
            Requires the reference engine.
        engine: Step engine (``Simulator(engine=...)``); ``"array"``
            falls back to the reference engine for unported routers, and
            a fault ``plan`` forces the reference engine (link filters
            are not vectorized).

    The simulator runs with ``validate=False`` for the same reason the
    faults layer does: observing overload-induced overflows is the
    oracles' job, and record mode must outlive them.
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if measure < 1:
        raise ValueError(f"measure must be >= 1, got {measure}")
    if drain < 0:
        raise ValueError(f"drain must be >= 0, got {drain}")

    if plan is not None:
        engine = "reference"  # link filters run on the reference engine only
    sim = Simulator(topology, algorithm, [], validate=False, engine=engine)
    if plan is not None:
        plan.attach(sim)
    checker = attach_checker(
        sim,
        [PacketConservationOracle(), QueueBoundOracle(), MinimalityOracle()],
        mode=oracle_mode,
    )

    nodes = list(topology.nodes())
    horizon = warmup + measure
    next_pid = 0
    injected_at: dict[int, int] = {}
    offered = admitted = rejected = 0
    offered_m = admitted_m = rejected_m = 0

    for t in range(horizon):
        in_measure = t >= warmup
        # Fresh same-step admission accounting at every step boundary, so
        # a burst cannot overbook the queue it lands in (see offer_packet).
        space_left: dict[tuple[tuple[int, int], Any], int] = {}
        for node in nodes:
            for dst in process.arrivals(topology, node, t):
                offered += 1
                packet = Packet(next_pid, node, dst, injection_time=t)
                next_pid += 1
                took = offer_packet(sim, packet, space_left)
                if took:
                    injected_at[packet.pid] = t
                    admitted += 1
                else:
                    rejected += 1
                if in_measure:
                    offered_m += 1
                    admitted_m += int(took)
                    rejected_m += int(not took)
        sim.step()

    deadline = horizon + drain
    idle = 0
    while not sim.done and sim.time < deadline and idle < STALL_STEPS:
        moves_before = sim.total_moves
        sim.step()
        idle = idle + 1 if sim.total_moves == moves_before else 0
    stalled = not sim.done and idle >= STALL_STEPS
    checker.finish()

    delivery = sim.delivery_times
    latencies = sorted(
        delivery[pid] - t0
        for pid, t0 in injected_at.items()
        if t0 >= warmup and pid in delivery
    )
    return StreamingReport(
        result=sim.result(),
        violations=list(checker.violations),
        engine=sim.engine_name,
        offered=offered,
        admitted=admitted,
        rejected=rejected,
        offered_measured=offered_m,
        admitted_measured=admitted_m,
        rejected_measured=rejected_m,
        delivered_measured=len(latencies),
        nodes=len(nodes),
        measure=measure,
        latencies=latencies,
        drained=sim.done,
        stalled=stalled,
    )
