#!/usr/bin/env python
"""Quickstart: route a random permutation on a 32 x 32 mesh.

Runs the Theorem 15 bounded-queue dimension-order router (the paper's
practical workhorse) and a minimal adaptive router on the same instance,
printing delivery time and queue usage.

Usage::

    python examples/quickstart.py [n] [k]
"""

import sys

from repro import (
    BoundedDimensionOrderRouter,
    GreedyAdaptiveRouter,
    Mesh,
    Simulator,
)
from repro.workloads import random_permutation


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    mesh = Mesh(n)

    print(f"Routing a random permutation on a {n}x{n} mesh (queues of size {k})\n")
    for factory in (
        lambda: BoundedDimensionOrderRouter(k),
        lambda: GreedyAdaptiveRouter(k, "incoming"),
    ):
        algorithm = factory()
        packets = random_permutation(mesh, seed=42)
        sim = Simulator(mesh, algorithm, packets)
        result = sim.run(max_steps=100 * n * n)
        status = "delivered" if result.completed else "STALLED"
        print(
            f"{algorithm.name:28s} {status} in {result.steps:5d} steps "
            f"(diameter {mesh.diameter}), max queue {result.max_queue_len}, "
            f"{result.total_moves} link transmissions"
        )


if __name__ == "__main__":
    main()
