#!/usr/bin/env python
"""Dynamic traffic: a load-latency sweep on the Theorem 15 router.

The paper's model extends to dynamic injection (Section 5); this example
runs the classic network-evaluation experiment on our substrate: Bernoulli
injection at increasing rates, mean/percentile latency, and the saturation
knee (for uniform traffic on an n x n mesh the bisection limits the
per-node rate to about 4/n).

Usage::

    python examples/dynamic_traffic.py [n] [k]
"""

import sys

from repro.analysis import format_table, latency_stats, peak_throughput
from repro.mesh import Mesh, Simulator
from repro.routing import BoundedDimensionOrderRouter
from repro.workloads import bernoulli_traffic


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    mesh = Mesh(n)
    horizon = 12 * n
    rows = []
    for rate in (0.01, 0.02, 0.05, 0.10, 0.15, 0.20):
        packets = bernoulli_traffic(mesh, rate=rate, horizon=horizon, seed=7)
        sim = Simulator(mesh, BoundedDimensionOrderRouter(k), packets)
        result = sim.run(max_steps=60 * horizon)
        dist = {p.pid: mesh.distance(p.source, p.dest) for p in packets}
        stats = latency_stats(result, packets, dist)
        rows.append(
            [
                f"{rate:.2f}",
                len(packets),
                "yes" if result.completed else "NO",
                f"{stats.mean:.1f}",
                f"{stats.p95:.0f}",
                f"{stats.mean_slowdown:.2f}",
                f"{peak_throughput(result):.1f}",
            ]
        )
    print(
        f"Bernoulli traffic on a {n}x{n} mesh, Theorem 15 router (k={k}), "
        f"injection horizon {horizon} steps\n"
    )
    print(
        format_table(
            ["rate/node/step", "packets", "drained", "mean latency",
             "p95", "slowdown", "peak thpt/step"],
            rows,
        )
    )
    print(
        f"\nLatency stays near shortest-path ({mesh.diameter} max) until the "
        f"load nears the mesh's bisection limit (~{4 / n:.2f}/node/step), "
        "then the knee appears -- the usual saturation picture, on the "
        "paper's machine model."
    )


if __name__ == "__main__":
    main()
