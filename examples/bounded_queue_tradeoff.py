#!/usr/bin/env python
"""The queue-size / time tradeoff of Theorem 15 and the Section 5 bound.

The dimension-order lower bound says Omega(n^2/k) steps are unavoidable for
destination-exchangeable dimension-order routing with queues of size k;
Theorem 15's router achieves O(n^2/k + n).  Sweeping k at fixed n shows the
measured worst case (over the adversarially constructed permutation)
tracking the 1/k shape until the O(n) term takes over.

Usage::

    python examples/bounded_queue_tradeoff.py [n]
"""

import sys

from repro.analysis import format_table
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.core.replay import replay_constructed_permutation
from repro.routing import BoundedDimensionOrderRouter


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    rows = []
    for k in (1, 2, 4):  # node capacity 4k; k=8 would need n >= 136
        factory = lambda k=k: BoundedDimensionOrderRouter(k)
        con = DorLowerBoundConstruction(n, factory)
        result = con.run()
        report = replay_constructed_permutation(
            result, factory, run_to_completion=True, max_steps=2_000_000
        )
        rows.append(
            [
                k,
                con.constants.bound_steps,
                report.total_steps,
                report.max_queue_len,
                f"{report.total_steps * k / (n * n):.2f}",
            ]
        )
    print(f"Adversarial dimension-order routing on a {n}x{n} mesh")
    print("(measured = Theorem 15 router on the constructed permutation)\n")
    print(
        format_table(
            ["k", "certified lower bound", "measured steps", "max queue", "steps*k/n^2"],
            rows,
        )
    )
    print(
        "\nsteps*k/n^2 holding roughly constant is the Omega(n^2/k) shape; "
        "it drops once the O(n) term dominates."
    )


if __name__ == "__main__":
    main()
