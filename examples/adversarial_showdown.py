#!/usr/bin/env python
"""The paper's main result, live: build a permutation that defeats a
minimal adaptive router.

For a destination-exchangeable minimal adaptive algorithm, the Section 3
adversary constructs a permutation certified (Theorem 13) to need at least
``floor(l) * dn`` steps.  This example runs the construction, verifies the
Lemma 12 replay equality, and contrasts the constructed permutation's
routing time with a random permutation's.

Usage::

    python examples/adversarial_showdown.py [n]
"""

import sys

from repro import GreedyAdaptiveRouter, Mesh, Simulator
from repro.core import AdaptiveLowerBoundConstruction, replay_constructed_permutation
from repro.workloads import random_partial_permutation


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    factory = lambda: GreedyAdaptiveRouter(1)

    print(f"Victim: {factory().name} (destination-exchangeable, minimal, k=1)")
    print(f"Mesh: {n}x{n}, diameter {2 * n - 2}\n")

    construction = AdaptiveLowerBoundConstruction(n, factory, check_invariants=True)
    consts = construction.constants
    print(
        f"Construction constants: cn={consts.cn}, dn={consts.dn}, p={consts.p}, "
        f"levels={consts.l_floor}, certified bound = {consts.bound_steps} steps"
    )
    result = construction.run()
    print(
        f"Construction ran {result.bound_steps} steps with "
        f"{result.exchange_count} destination exchanges; "
        f"{result.undelivered_at_bound} packets still undelivered (Corollary 9)\n"
    )

    report = replay_constructed_permutation(
        result, factory, run_to_completion=True, max_steps=1_000_000
    )
    print(
        "Replay without the adversary (Lemma 12): configuration matches = "
        f"{report.configuration_matches}, deliveries match = "
        f"{report.delivery_times_match}"
    )
    print(
        f"Routing the constructed permutation to completion took "
        f"{report.total_steps} steps\n"
    )

    # Apples-to-apples: a random partial permutation with the same number
    # of packets.  (A *full* random permutation would start with every k=1
    # central queue full -- gridlocked from step 0, see the dimension-order
    # router docs.)
    mesh = Mesh(n)
    fraction = len(result.permutation) / mesh.num_nodes
    rand = Simulator(
        mesh, factory(), random_partial_permutation(mesh, fraction, seed=7)
    ).run(max_steps=20 * n)
    if rand.completed:
        print(
            f"A random partial permutation of the same size "
            f"({len(result.permutation)} packets) takes {rand.steps} steps."
        )
        print(
            f"Adversarial / random slowdown: "
            f"{report.total_steps / rand.steps:.1f}x"
        )
    else:
        print(
            f"The random instance stalled "
            f"({rand.total_packets - rand.delivered} packets stuck "
            f"after {rand.steps} steps): with k=1 central queues, head-on "
            "transit pairs exchange-deadlock -- the very pathology Theorem "
            "15's incoming-queue organization exists to avoid."
        )


if __name__ == "__main__":
    main()
