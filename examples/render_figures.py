#!/usr/bin/env python
"""Render the paper's figures as text, from live construction objects.

Usage::

    python examples/render_figures.py
"""

from repro.core import AdaptiveLowerBoundConstruction
from repro.core.constants import (
    AdaptiveConstants,
    DimensionOrderConstants,
    FarthestFirstConstants,
)
from repro.core.dor_adversary import DorGeometry
from repro.core.ff_adversary import FfGeometry
from repro.core.geometry import BoxGeometry
from repro.routing import GreedyAdaptiveRouter
from repro.tiling.geometry import Tile
from repro.viz import (
    render_box_invariant,
    render_lemma12_diagram,
    render_construction_geometry,
    render_dor_construction,
    render_ff_construction,
    render_sort_smooth,
    render_strips,
    render_subphase_schedule,
)


def main() -> None:
    consts = AdaptiveConstants.choose(60, 1)
    geo = BoxGeometry.from_constants(consts)
    print(render_construction_geometry(geo))
    print()

    # Figure 2: run the construction briefly and show live packet classes.
    factory = lambda: GreedyAdaptiveRouter(1)
    con = AdaptiveLowerBoundConstruction(60, factory)
    packets = con.build_packets()
    from repro.core.adversary import AdaptiveAdversary
    from repro.mesh import Mesh, Simulator

    adv = AdaptiveAdversary(con.constants, con.geometry)
    sim = Simulator(Mesh(60), factory(), packets, interceptor=adv)
    sim.run_steps(min(10, con.constants.bound_steps))
    print(render_box_invariant(con.geometry, packets, i=1))
    print()

    print(render_lemma12_diagram(con.constants.bound_steps, adv.exchange_count))
    print()

    dc = DimensionOrderConstants.choose(60, 1)
    print(render_dor_construction(DorGeometry(n=60, cn=dc.cn, levels=dc.l_floor)))
    print()

    fc = FarthestFirstConstants.choose(60, 1)
    print(
        render_ff_construction(
            FfGeometry(n=60, cn=fc.cn, levels=fc.l_floor, num_classes=12)
        )
    )
    print()

    print(render_strips(Tile(0, 0, 81), dest_strip=20))
    print()

    print(
        render_sort_smooth(
            before={(0, 1): [6, 7, 1, 1, 2], (0, 0): [4, 2, 3, 6]},
            after={(0, 3): [7, 6], (0, 2): [6, 4], (0, 1): [3, 2], (0, 0): [2, 1]},
            d=4,
        )
    )
    print()

    print(render_subphase_schedule())
    print()

    # Bonus: a live occupancy heatmap mid-construction (not a paper figure,
    # but the fastest way to *see* the 1-box congestion the adversary pins).
    from repro.viz import render_occupancy_heatmap

    occupancy = {
        node: sum(len(q) for q in qs.values()) for node, qs in sim.queues.items()
    }
    print(render_occupancy_heatmap(occupancy, 60, title="construction occupancy @ t=10"))


if __name__ == "__main__":
    main()
