#!/usr/bin/env python
"""The Section 6 algorithm: O(n) time with O(1) queues, minimal adaptive.

Routes permutations on meshes of side 27 and 81 (and 243 with --big),
reporting the barrier-schedule time against Theorem 34's 972n bound and the
peak queue occupancy against the 834-packet bound.

Usage::

    python examples/linear_time_routing.py [--big] [--improved]
"""

import sys

from repro.analysis import format_table
from repro.mesh import Mesh
from repro.tiling import Section6Router
from repro.workloads import random_permutation, transpose_permutation


def main() -> None:
    sizes = [27, 81, 243] if "--big" in sys.argv else [27, 81]
    improved = "--improved" in sys.argv
    factor = 564 if improved else 972

    rows = []
    for n in sizes:
        mesh = Mesh(n)
        for name, packets in (
            ("random", random_permutation(mesh, seed=0)),
            ("transpose", transpose_permutation(mesh)),
        ):
            result = Section6Router(n, improved=improved).route(packets)
            rows.append(
                [
                    n,
                    name,
                    result.actual_steps,
                    result.scheduled_steps,
                    factor * n,
                    f"{result.scheduled_steps / n:.0f}",
                    result.max_node_load,
                ]
            )
    print(
        "Section 6 minimal adaptive routing "
        f"({'improved q=102' if improved else 'q=408'} schedule)\n"
    )
    print(
        format_table(
            [
                "n",
                "workload",
                "actual steps",
                "scheduled steps",
                f"{factor}n bound",
                "sched/n",
                "max node load (<=834)",
            ],
            rows,
        )
    )
    print(
        f"\nsched/n stays below {factor} at every size (the O(n) guarantee); "
        "every run is verified minimal adaptive, with all Lemma 29-32 "
        "budgets enforced."
    )


if __name__ == "__main__":
    main()
