#!/usr/bin/env python
"""Build, persist, and reuse a library of certified hard instances.

Adversarial constructions are quadratic simulations -- expensive to
regenerate.  This example builds one hard permutation per construction
family, saves them as plain JSON with their certified bounds, then reloads
and re-verifies each (Theorem 13: undelivered packets at the bound).

Usage::

    python examples/hard_instance_library.py [output_dir]
"""

import pathlib
import sys

from repro.core import AdaptiveLowerBoundConstruction
from repro.core.dor_adversary import DorLowerBoundConstruction
from repro.core.ff_adversary import FfLowerBoundConstruction
from repro.io import load_construction_instance, save_construction
from repro.mesh import Mesh, Simulator
from repro.routing import (
    BoundedDimensionOrderRouter,
    FarthestFirstRouter,
    GreedyAdaptiveRouter,
)


def main() -> None:
    out = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path("hard_instances")
    out.mkdir(exist_ok=True)

    families = [
        (
            "adaptive_n120_k1",
            AdaptiveLowerBoundConstruction(120, lambda: GreedyAdaptiveRouter(1)),
            lambda: GreedyAdaptiveRouter(1),
        ),
        (
            "dimension_order_n96_k1",
            DorLowerBoundConstruction(96, lambda: BoundedDimensionOrderRouter(1)),
            lambda: BoundedDimensionOrderRouter(1),
        ),
        (
            "farthest_first_n60_k1",
            FfLowerBoundConstruction(60, lambda: FarthestFirstRouter(1)),
            lambda: FarthestFirstRouter(1),
        ),
    ]

    print("Building and saving hard instances...\n")
    for name, construction, _factory in families:
        result = construction.run()
        path = out / f"{name}.json"
        save_construction(result, path)
        print(
            f"  {path}  ({len(result.packet_table)} packets, certified "
            f">= {result.bound_steps} steps, {path.stat().st_size} bytes)"
        )

    print("\nReloading and re-verifying Theorem 13 from disk...\n")
    for name, _construction, factory in families:
        meta, packets = load_construction_instance(out / f"{name}.json")
        sim = Simulator(Mesh(meta["n"]), factory(), packets)
        sim.run_steps(meta["bound_steps"])
        status = "CERTIFIED" if sim.in_flight >= 1 else "FAILED?!"
        print(
            f"  {name}: {sim.in_flight} packets undelivered at step "
            f"{meta['bound_steps']} -> {status}"
        )


if __name__ == "__main__":
    main()
